//! On-disk persistence of the co-search cache.
//!
//! The workspace's serde shim derives are no-ops (no registry access), so the
//! format here is deliberately hand-rolled: a line-based text file that is
//! trivially diffable and versioned by a header. A record is
//!
//! ```text
//! feather-cosearch-cache v1
//! E <escaped cache key>
//! R <result tokens>
//! T <escaped table key>
//! C <layout>
//! S <result tokens>      (the layout's best "stay" choice)
//! W <result tokens>      (the layout's best "switch" choice)
//! ```
//!
//! where result tokens are space-separated `key=value` pairs with the
//! separators percent-escaped. Unknown or malformed records are skipped on
//! load (a stale or corrupt cache degrades to recomputation, never to an
//! error), and a header mismatch discards the whole file.
//!
//! Persistence is **gated behind the `FEATHER_CACHE_DIR` environment
//! variable**: [`CoSearchCache::load_persistent`] returns an empty cache and
//! [`CoSearchCache::save_persistent`] is a no-op unless it is set. The
//! benches and the `resnet50_graph` example call these at startup/exit, so
//! repeated runs skip every co-search they have seen before — across
//! processes, not just within one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use feather_arch::dataflow::{ArrayShape, Dataflow, LoopNest, ParallelDim, TemporalLoop};
use feather_arch::dims::Dim;
use feather_arch::energy::EnergyBreakdown;
use feather_arch::layout::Layout;

use crate::cache::CoSearchCache;
use crate::cosearch::{CoSearchResult, CoSearchTable, LayoutChoice};
use crate::evaluate::Evaluation;

/// File format header; bump the version when the encoding changes.
const HEADER: &str = "feather-cosearch-cache v1";

/// File name used inside `FEATHER_CACHE_DIR`.
const FILE_NAME: &str = "cosearch.cache";

/// The shared on-disk cache root, when `FEATHER_CACHE_DIR` is set.
///
/// All persisted FEATHER artifacts live under this one directory so a single
/// environment variable warms every layer of the stack:
///
/// ```text
/// $FEATHER_CACHE_DIR/
///   cosearch.cache            co-search tables (this module)
///   programs/
///     <model>-b<batch>-<fingerprint>.program
///                             compiled graph programs
///                             (`feather::GraphSession::compile_cached`)
/// ```
pub fn cache_dir() -> Option<PathBuf> {
    std::env::var_os("FEATHER_CACHE_DIR").map(PathBuf::from)
}

/// Percent-escapes the characters the format uses as separators.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3D"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(ch),
        }
    }
    out
}

/// Reverses [`esc`]; returns `None` on a malformed escape.
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn encode_parallel(dims: &[ParallelDim]) -> String {
    if dims.is_empty() {
        return "-".to_string();
    }
    dims.iter()
        .map(|p| format!("{}:{}", p.dim, p.factor))
        .collect::<Vec<_>>()
        .join("+")
}

fn decode_parallel(s: &str) -> Option<Vec<ParallelDim>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('+')
        .map(|tok| {
            let (dim, factor) = tok.split_once(':')?;
            Some(ParallelDim::new(
                dim.parse::<Dim>().ok()?,
                factor.parse().ok()?,
            ))
        })
        .collect()
}

fn encode_temporal(nest: &LoopNest) -> String {
    if nest.loops.is_empty() {
        return "-".to_string();
    }
    nest.loops
        .iter()
        .map(|l| format!("{}:{}", l.dim, l.extent))
        .collect::<Vec<_>>()
        .join("+")
}

fn decode_temporal(s: &str) -> Option<LoopNest> {
    if s == "-" {
        return Some(LoopNest::new([]));
    }
    let loops: Option<Vec<TemporalLoop>> = s
        .split('+')
        .map(|tok| {
            let (dim, extent) = tok.split_once(':')?;
            Some(TemporalLoop::new(
                dim.parse::<Dim>().ok()?,
                extent.parse().ok()?,
            ))
        })
        .collect();
    Some(LoopNest { loops: loops? })
}

/// Encodes one [`CoSearchResult`] as space-separated `key=value` tokens.
fn encode_result(r: &CoSearchResult) -> String {
    let df = &r.dataflow;
    let ev = &r.evaluation;
    let e = &ev.energy;
    [
        format!("df.name={}", esc(&df.name)),
        format!("df.shape={}x{}", df.shape.rows, df.shape.cols),
        format!("df.row={}", encode_parallel(&df.row_parallel)),
        format!("df.col={}", encode_parallel(&df.col_parallel)),
        format!("df.tmp={}", encode_temporal(&df.temporal)),
        format!("layout={}", esc(&r.layout.to_string())),
        format!("ev.arch={}", esc(&ev.arch)),
        format!("ev.layer={}", esc(&ev.layer)),
        format!("ev.dataflow={}", esc(&ev.dataflow)),
        format!("ev.layout={}", esc(&ev.layout)),
        format!("ev.cycles={}", ev.cycles),
        format!("ev.ideal={}", ev.ideal_cycles),
        format!("ev.conflict={:?}", ev.conflict_slowdown),
        format!("ev.stall={}", ev.stall_cycles),
        format!("ev.reorder={}", ev.reorder_cycles),
        format!("ev.sputil={:?}", ev.spatial_utilization),
        format!("ev.util={:?}", ev.utilization),
        format!("ev.lpc={:?}", ev.lines_per_cycle),
        format!("ev.redpj={:?}", ev.reorder_energy_pj),
        format!("ev.edp={:?}", ev.edp),
        format!(
            "ev.e={:?}+{:?}+{:?}+{:?}+{:?}+{:?}",
            e.compute_pj, e.register_pj, e.sram_pj, e.dram_pj, e.noc_pj, e.leakage_pj
        ),
    ]
    .join(" ")
}

/// Decodes [`encode_result`] output; `None` on any malformed token.
fn decode_result(s: &str) -> Option<CoSearchResult> {
    let get = |wanted: &str| -> Option<String> {
        s.split(' ').find_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            (k == wanted).then(|| v.to_string())
        })
    };
    let shape = get("df.shape")?;
    let (rows, cols) = shape.split_once('x')?;
    let dataflow = Dataflow::new(
        unesc(&get("df.name")?)?,
        ArrayShape::new(rows.parse().ok()?, cols.parse().ok()?),
        decode_parallel(&get("df.row")?)?,
        decode_parallel(&get("df.col")?)?,
        decode_temporal(&get("df.tmp")?)?,
    );
    let layout: Layout = unesc(&get("layout")?)?.parse().ok()?;
    let energy_raw = get("ev.e")?;
    let parts: Vec<f64> = energy_raw
        .split('+')
        .map(|p| p.parse().ok())
        .collect::<Option<Vec<_>>>()?;
    let [compute_pj, register_pj, sram_pj, dram_pj, noc_pj, leakage_pj] = parts[..] else {
        return None;
    };
    let evaluation = Evaluation {
        arch: unesc(&get("ev.arch")?)?,
        layer: unesc(&get("ev.layer")?)?,
        dataflow: unesc(&get("ev.dataflow")?)?,
        layout: unesc(&get("ev.layout")?)?,
        cycles: get("ev.cycles")?.parse().ok()?,
        ideal_cycles: get("ev.ideal")?.parse().ok()?,
        conflict_slowdown: get("ev.conflict")?.parse().ok()?,
        stall_cycles: get("ev.stall")?.parse().ok()?,
        reorder_cycles: get("ev.reorder")?.parse().ok()?,
        spatial_utilization: get("ev.sputil")?.parse().ok()?,
        utilization: get("ev.util")?.parse().ok()?,
        lines_per_cycle: get("ev.lpc")?.parse().ok()?,
        energy: EnergyBreakdown {
            compute_pj,
            register_pj,
            sram_pj,
            dram_pj,
            noc_pj,
            leakage_pj,
        },
        reorder_energy_pj: get("ev.redpj")?.parse().ok()?,
        edp: get("ev.edp")?.parse().ok()?,
    };
    Some(CoSearchResult {
        dataflow,
        layout,
        evaluation,
    })
}

impl CoSearchCache {
    /// Serializes the cache (both result entries and whole tables) to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (key, result) in self.entries() {
            out.push_str(&format!("E {}\n", esc(key)));
            out.push_str(&format!("R {}\n", encode_result(result)));
        }
        for (key, table) in self.table_entries() {
            out.push_str(&format!("T {}\n", esc(key)));
            for choice in &table.choices {
                out.push_str(&format!("C {}\n", esc(&choice.layout.to_string())));
                out.push_str(&format!("S {}\n", encode_result(&choice.stay)));
                out.push_str(&format!("W {}\n", encode_result(&choice.switch)));
            }
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, out)
    }

    /// Loads a cache previously written by [`CoSearchCache::save_to`].
    /// Malformed records are skipped; a header mismatch yields an empty
    /// cache. Hit/miss counters start at zero.
    ///
    /// # Errors
    /// Propagates filesystem errors (e.g. the file does not exist).
    pub fn load_from(path: &Path) -> io::Result<CoSearchCache> {
        let text = fs::read_to_string(path)?;
        let mut cache = CoSearchCache::new();
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Ok(cache);
        }
        let mut pending_entry: Option<String> = None;
        let mut pending_table: Option<(String, CoSearchTable)> = None;
        let mut pending_choice: Option<(Layout, Option<CoSearchResult>)> = None;
        let flush_table = |cache: &mut CoSearchCache, table: Option<(String, CoSearchTable)>| {
            if let Some((key, table)) = table {
                if !table.choices.is_empty() {
                    cache.insert_table(key, table);
                }
            }
        };
        for line in lines {
            let Some((tag, body)) = line.split_once(' ') else {
                continue;
            };
            match tag {
                "E" => {
                    flush_table(&mut cache, pending_table.take());
                    pending_entry = unesc(body);
                }
                "R" => {
                    if let (Some(key), Some(result)) = (pending_entry.take(), decode_result(body)) {
                        cache.insert_raw(key, result);
                    }
                }
                "T" => {
                    flush_table(&mut cache, pending_table.take());
                    pending_choice = None;
                    pending_table = unesc(body).map(|key| (key, CoSearchTable::default()));
                }
                "C" => {
                    pending_choice = unesc(body)
                        .and_then(|l| l.parse::<Layout>().ok())
                        .map(|l| (l, None));
                }
                "S" => {
                    if let Some((_, stay)) = pending_choice.as_mut() {
                        *stay = decode_result(body);
                    }
                }
                "W" => {
                    if let (Some((layout, Some(stay))), Some(switch)) =
                        (pending_choice.take(), decode_result(body))
                    {
                        if let Some((_, table)) = pending_table.as_mut() {
                            table.choices.push(LayoutChoice {
                                layout,
                                stay,
                                switch,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        flush_table(&mut cache, pending_table.take());
        Ok(cache)
    }

    /// The persistent cache file location, when `FEATHER_CACHE_DIR` is set.
    pub fn persistent_path() -> Option<PathBuf> {
        cache_dir().map(|dir| dir.join(FILE_NAME))
    }

    /// Loads the persistent cache if `FEATHER_CACHE_DIR` is set and holds
    /// one; an empty cache otherwise. Never errors — persistence is a pure
    /// accelerator.
    pub fn load_persistent() -> CoSearchCache {
        Self::persistent_path()
            .and_then(|path| Self::load_from(&path).ok())
            .unwrap_or_default()
    }

    /// Writes the cache to the persistent location. Returns `Ok(false)` when
    /// `FEATHER_CACHE_DIR` is unset (nothing written).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_persistent(&self) -> io::Result<bool> {
        match Self::persistent_path() {
            Some(path) => self.save_to(&path).map(|()| true),
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::cosearch::{co_search_table, co_search_with};
    use crate::mapper::MapperConfig;
    use feather_arch::workload::{ConvLayer, Workload};

    fn workload() -> Workload {
        ConvLayer::new(1, 32, 16, 14, 14, 3, 3)
            .with_padding(1)
            .with_name("persist_layer")
            .into()
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "feather-persist-test-{name}-{}",
            std::process::id()
        ))
    }

    /// Serializes the two tests that touch `FEATHER_CACHE_DIR` (tests run
    /// concurrently within the crate).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn result_roundtrips_through_the_token_format() {
        let arch = ArchSpec::feather_like(16, 16);
        let result = co_search_with(&arch, &workload(), None, &MapperConfig::fast(), 0).unwrap();
        let decoded = decode_result(&encode_result(&result)).expect("decodes");
        assert_eq!(decoded, result);
    }

    #[test]
    fn escaping_roundtrips_awkward_strings() {
        for s in [
            "plain",
            "with space",
            "k=v",
            "a%20b",
            "tab\there",
            "nl\nhere",
        ] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        // Malformed escapes are rejected, not mangled.
        assert_eq!(unesc("%2"), None);
        assert_eq!(unesc("%zz"), None);
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let arch = ArchSpec::feather_like(16, 16);
        let mapper = MapperConfig::fast();
        let w = workload();
        let mut cache = CoSearchCache::new();
        let result = co_search_with(&arch, &w, None, &mapper, 0).unwrap();
        cache.insert(&arch, &w, None, &mapper, 0, result.clone());
        let table = co_search_table(&arch, &w, &mapper, 0).unwrap();
        cache.insert_table(
            crate::cache::table_key(&arch, &w, &mapper, 0),
            table.clone(),
        );

        let path = temp_path("roundtrip");
        cache.save_to(&path).unwrap();
        let loaded = CoSearchCache::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.table_count(), 1);
        let key = crate::cache::table_key(&arch, &w, &mapper, 0);
        assert_eq!(loaded.peek_table(&key), Some(&table));
        let mut loaded = loaded;
        let hit = loaded.lookup(&arch, &w, None, &mapper, 0).unwrap();
        assert_eq!(hit.layout, result.layout);
        assert_eq!(hit.evaluation.edp, result.evaluation.edp);
    }

    #[test]
    fn header_mismatch_and_garbage_degrade_to_empty() {
        let path = temp_path("garbage");
        std::fs::write(&path, "something else entirely\nE x\nR y\n").unwrap();
        let loaded = CoSearchCache::load_from(&path).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.table_count(), 0);
        // Right header, malformed records → skipped, not fatal.
        std::fs::write(&path, format!("{HEADER}\nE key\nR not-tokens\nQ ???\n")).unwrap();
        let loaded = CoSearchCache::load_from(&path).unwrap();
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error_but_load_persistent_degrades() {
        let _guard = ENV_LOCK.lock().unwrap();
        assert!(CoSearchCache::load_from(&temp_path("never-written")).is_err());
        // Without FEATHER_CACHE_DIR the persistent helpers are inert.
        if std::env::var_os("FEATHER_CACHE_DIR").is_none() {
            assert!(CoSearchCache::persistent_path().is_none());
            assert!(CoSearchCache::load_persistent().is_empty());
            assert!(!CoSearchCache::new().save_persistent().unwrap());
        }
    }

    #[test]
    fn persistent_roundtrip_via_env_dir() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = temp_path("envdir");
        std::env::set_var("FEATHER_CACHE_DIR", &dir);
        let arch = ArchSpec::feather_like(16, 16);
        let mapper = MapperConfig::fast();
        let w = workload();
        let mut cache = CoSearchCache::new();
        let table = co_search_table(&arch, &w, &mapper, 0).unwrap();
        cache.insert_table(crate::cache::table_key(&arch, &w, &mapper, 0), table);
        assert!(cache.save_persistent().unwrap());
        let loaded = CoSearchCache::load_persistent();
        assert_eq!(loaded.table_count(), 1);
        std::env::remove_var("FEATHER_CACHE_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
