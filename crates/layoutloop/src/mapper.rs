//! Dataflow candidate generation ("the mapper").
//!
//! Timeloop's mapper enumerates loop-nest transformations; Layoutloop keeps
//! the same role but only needs the subset of the space that distinguishes the
//! paper's designs: which dimensions are parallelized across the PE rows and
//! columns and with which factors, under each architecture's flexibility
//! constraints (fixed dataflow, TOP, TOPS, ...).

use feather_arch::dataflow::{ArrayShape, Dataflow, LoopNest, ParallelDim};
use feather_arch::dims::Dim;
use feather_arch::workload::Workload;
use serde::{Deserialize, Serialize};

use crate::arch::{ArchSpec, DataflowPolicy, FixedDataflow};

/// Mapper tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Also consider mappings that split one array axis between two dimensions
    /// (virtual shape grouping — only meaningful for shape-flexible designs).
    pub include_pairs: bool,
    /// Hard cap on the number of candidates returned.
    pub max_candidates: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            include_pairs: true,
            max_candidates: 128,
        }
    }
}

impl MapperConfig {
    /// A cheaper configuration for large sweeps (single-dimension parallelism only).
    pub fn fast() -> Self {
        MapperConfig {
            include_pairs: false,
            max_candidates: 48,
        }
    }
}

/// Largest factor of `dim_size` that fits in `capacity` (the mapped extent of
/// a dimension on one array axis). Favors exact divisors of the dimension so
/// tiles are not padded, but falls back to the capacity itself.
fn fit_factor(dim_size: usize, capacity: usize) -> usize {
    if dim_size == 0 || capacity == 0 {
        return 1;
    }
    if dim_size <= capacity {
        return dim_size;
    }
    // Prefer an exact divisor of dim_size within capacity (no padded lanes);
    // fall back to the full capacity (padded last lane) when none exists.
    for f in (2..=capacity).rev() {
        if dim_size % f == 0 {
            return f;
        }
    }
    capacity
}

/// One axis assignment: dims with their factors, multiplying to ≤ capacity.
fn axis_assignments(
    workload: &Workload,
    capacity: usize,
    dims: &[Dim],
    include_pairs: bool,
) -> Vec<Vec<ParallelDim>> {
    let mut out: Vec<Vec<ParallelDim>> = Vec::new();
    for &d in dims {
        let f = fit_factor(workload.dim(d), capacity);
        if f >= 1 {
            out.push(vec![ParallelDim::new(d, f)]);
        }
    }
    if include_pairs {
        for &d1 in dims {
            for &d2 in dims {
                if d1 >= d2 {
                    continue;
                }
                let f1 = fit_factor(workload.dim(d1), capacity);
                if f1 == 0 || f1 >= capacity {
                    continue;
                }
                let f2 = fit_factor(workload.dim(d2), capacity / f1.max(1));
                if f1 > 1 && f2 > 1 {
                    out.push(vec![ParallelDim::new(d1, f1), ParallelDim::new(d2, f2)]);
                }
            }
        }
    }
    out
}

/// Builds the temporal remainder loop nest for a chosen spatial assignment.
fn remainder_nest(workload: &Workload, spatial: &[ParallelDim]) -> LoopNest {
    let spatial_of = |d: Dim| -> usize {
        spatial
            .iter()
            .filter(|p| p.dim == d)
            .map(|p| p.factor)
            .product::<usize>()
            .max(1)
    };
    let order = [Dim::N, Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S];
    let mut loops = Vec::new();
    for d in order {
        let extent = workload.dim(d).div_ceil(spatial_of(d));
        if extent > 1 {
            loops.push((d, extent));
        }
    }
    LoopNest::new(loops)
}

/// Generates the dataflow candidates the given architecture may run on the
/// given workload.
pub fn search_dataflows(
    arch: &ArchSpec,
    workload: &Workload,
    config: &MapperConfig,
) -> Vec<Dataflow> {
    match &arch.dataflow_policy {
        DataflowPolicy::Fixed(kind) => vec![fixed_dataflow(*kind, arch.shape, workload)],
        DataflowPolicy::Flexible => flexible_dataflows(arch, workload, config),
    }
}

/// The single dataflow of a fixed-dataflow design.
pub fn fixed_dataflow(kind: FixedDataflow, shape: ArrayShape, workload: &Workload) -> Dataflow {
    match kind {
        FixedDataflow::WeightStationaryMC => Dataflow::weight_stationary(shape, workload),
        FixedDataflow::OutputStationaryPQ => Dataflow::output_stationary(shape, workload),
        FixedDataflow::RowStationary => row_stationary_folded(shape, workload),
        FixedDataflow::DpuFixed => dpu_dataflow(shape, workload),
    }
}

/// Eyeriss-style row-stationary mapping with filter folding: kernel rows `R`
/// map across PE rows and, when `R` is smaller than the array (1×1 layers,
/// GEMMs), multiple output channels fold onto the remaining rows — mirroring
/// how Eyeriss packs several filters per PE to keep the array busy. Output
/// rows `P` map across columns.
fn row_stationary_folded(shape: ArrayShape, workload: &Workload) -> Dataflow {
    let r = fit_factor(workload.dim(Dim::R), shape.rows);
    let m = fit_factor(workload.dim(Dim::M), shape.rows / r.max(1));
    let p = fit_factor(workload.dim(Dim::P), shape.cols);
    let q = fit_factor(workload.dim(Dim::Q), shape.cols / p.max(1));
    let row_parallel = if m > 1 {
        vec![ParallelDim::new(Dim::R, r), ParallelDim::new(Dim::M, m)]
    } else {
        vec![ParallelDim::new(Dim::R, r)]
    };
    let col_parallel = if q > 1 {
        vec![ParallelDim::new(Dim::P, p), ParallelDim::new(Dim::Q, q)]
    } else {
        vec![ParallelDim::new(Dim::P, p)]
    };
    let mut all = row_parallel.clone();
    all.extend(col_parallel.iter().copied());
    let temporal = remainder_nest(workload, &all);
    Dataflow::new(
        "row-stationary-RM_rows-P_cols",
        shape,
        row_parallel,
        col_parallel,
        temporal,
    )
}

/// Xilinx-DPU-style fixed parallelism: M across rows, C and output pixels
/// across columns (conceptually (12, 12, 8) for the B1152 configuration).
fn dpu_dataflow(shape: ArrayShape, workload: &Workload) -> Dataflow {
    let m = fit_factor(workload.dim(Dim::M), shape.rows);
    let c = fit_factor(workload.dim(Dim::C), 12.min(shape.cols));
    let q = fit_factor(workload.dim(Dim::Q), shape.cols / c.max(1));
    let spatial = vec![ParallelDim::new(Dim::C, c), ParallelDim::new(Dim::Q, q)];
    let mut all = vec![ParallelDim::new(Dim::M, m)];
    all.extend(spatial.iter().copied());
    let temporal = remainder_nest(workload, &all);
    Dataflow::new(
        "dpu-fixed-M_rows-CQ_cols",
        shape,
        vec![ParallelDim::new(Dim::M, m)],
        spatial,
        temporal,
    )
}

fn flexible_dataflows(
    arch: &ArchSpec,
    workload: &Workload,
    config: &MapperConfig,
) -> Vec<Dataflow> {
    let shape = arch.shape;
    let dims: &[Dim] = &[Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S];
    let include_pairs = config.include_pairs && arch.flexibility.shape;

    // If the design cannot re-choose its parallel dims at run time, it only
    // runs its canonical weight-stationary mapping.
    if !arch.flexibility.parallelism {
        return vec![Dataflow::weight_stationary(shape, workload)];
    }

    let row_options = axis_assignments(workload, shape.rows, dims, include_pairs);
    let col_options = axis_assignments(workload, shape.cols, dims, include_pairs);

    let mut candidates = Vec::new();
    for rows in &row_options {
        for cols in &col_options {
            // A dimension should not be split across both axes in this simple
            // mapper (the evaluator would treat the two factors as independent
            // and over-count coverage).
            if rows.iter().any(|r| cols.iter().any(|c| c.dim == r.dim)) {
                continue;
            }
            let mut all = rows.clone();
            all.extend(cols.iter().copied());
            let temporal = remainder_nest(workload, &all);
            let name = format!(
                "flex-{}-rows_{}-cols",
                rows.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                cols.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
            );
            let df = Dataflow::new(name, shape, rows.clone(), cols.clone(), temporal);
            if df.validate(workload).is_ok() {
                candidates.push(df);
            }
            if candidates.len() >= config.max_candidates {
                return dedupe(candidates);
            }
        }
    }
    dedupe(candidates)
}

/// Removes candidates with identical spatial structure (same factors on the
/// same dims), keeping the first occurrence.
fn dedupe(candidates: Vec<Dataflow>) -> Vec<Dataflow> {
    let mut seen = std::collections::BTreeSet::new();
    candidates
        .into_iter()
        .filter(|df| {
            let key = (
                df.row_parallel
                    .iter()
                    .map(|p| (p.dim, p.factor))
                    .collect::<Vec<_>>(),
                df.col_parallel
                    .iter()
                    .map(|p| (p.dim, p.factor))
                    .collect::<Vec<_>>(),
            );
            seen.insert(format!("{key:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use feather_arch::workload::{ConvLayer, GemmLayer};

    fn layer() -> Workload {
        ConvLayer::new(1, 128, 256, 14, 14, 3, 3)
            .with_padding(1)
            .into()
    }

    #[test]
    fn fit_factor_prefers_divisors() {
        assert_eq!(fit_factor(64, 16), 16);
        assert_eq!(fit_factor(3, 16), 3);
        assert_eq!(fit_factor(48, 16), 16);
        assert_eq!(fit_factor(28, 16), 14); // 14 divides 28, 16 does not
        assert_eq!(fit_factor(7, 4), 4); // no divisor in range: fall back
        assert_eq!(fit_factor(0, 4), 1);
    }

    #[test]
    fn fixed_policy_yields_one_candidate() {
        let arch = ArchSpec::nvdla_like(16, 16);
        let c = search_dataflows(&arch, &layer(), &MapperConfig::default());
        assert_eq!(c.len(), 1);
        assert!(c[0].name.contains("weight-stationary"));
    }

    #[test]
    fn flexible_policy_yields_many_valid_candidates() {
        let arch = ArchSpec::feather_like(16, 16);
        let w = layer();
        let c = search_dataflows(&arch, &w, &MapperConfig::default());
        assert!(c.len() > 10, "only {} candidates", c.len());
        for df in &c {
            df.validate(&w).unwrap();
            assert_eq!(df.shape, arch.shape);
        }
    }

    #[test]
    fn fast_config_produces_fewer_candidates() {
        let arch = ArchSpec::feather_like(16, 16);
        let w = layer();
        let full = search_dataflows(&arch, &w, &MapperConfig::default());
        let fast = search_dataflows(&arch, &w, &MapperConfig::fast());
        assert!(fast.len() <= full.len());
    }

    #[test]
    fn no_dimension_split_across_axes() {
        let arch = ArchSpec::feather_like(16, 16);
        let w = layer();
        for df in search_dataflows(&arch, &w, &MapperConfig::default()) {
            for r in &df.row_parallel {
                assert!(!df.col_parallel.iter().any(|c| c.dim == r.dim));
            }
        }
    }

    #[test]
    fn dpu_dataflow_uses_channel_and_pixel_parallelism() {
        let arch = ArchSpec::xilinx_dpu_like();
        let w = layer();
        let c = search_dataflows(&arch, &w, &MapperConfig::default());
        assert_eq!(c.len(), 1);
        let dims: Vec<Dim> = c[0].col_parallel.iter().map(|p| p.dim).collect();
        assert!(dims.contains(&Dim::C));
        assert!(dims.contains(&Dim::Q));
        c[0].validate(&w).unwrap();
    }

    #[test]
    fn gemm_candidates_are_valid() {
        let arch = ArchSpec::feather_like(16, 16);
        let g: Workload = GemmLayer::new(512, 768, 768).with_name("bert_gemm").into();
        let c = search_dataflows(&arch, &g, &MapperConfig::default());
        assert!(!c.is_empty());
        for df in &c {
            df.validate(&g).unwrap();
        }
    }

    #[test]
    fn candidates_are_deduplicated() {
        let arch = ArchSpec::feather_like(16, 16);
        let w = layer();
        let c = search_dataflows(&arch, &w, &MapperConfig::default());
        let mut keys = std::collections::BTreeSet::new();
        for df in &c {
            let key = format!("{:?}|{:?}", df.row_parallel, df.col_parallel);
            assert!(keys.insert(key), "duplicate spatial mapping in candidates");
        }
    }
}
