//! Results of running a layer on the functional simulator.

use feather_arch::energy::EnergyBreakdown;
use feather_arch::tensor::Tensor4;
use feather_memsim::AccessStats;
use serde::{Deserialize, Serialize};

/// Performance/energy accounting for one layer execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles, including pipeline fill/drain and any stalls.
    pub cycles: u64,
    /// Cycles lost to StaB bank conflicts (zero when the mapping is concordant).
    pub stall_cycles: u64,
    /// Useful multiply-accumulates performed.
    pub macs: u64,
    /// Number of BIRRD passes (row fires).
    pub birrd_passes: u64,
    /// Number of adder activations inside BIRRD.
    pub birrd_adds: u64,
    /// StaB read-side access statistics.
    pub iact_stats: AccessStats,
    /// StaB write-side access statistics.
    pub oact_stats: AccessStats,
    /// Steady-state compute utilization (useful MACs / PE·cycles).
    pub utilization: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Energy per MAC in pJ.
    pub fn pj_per_mac(&self) -> f64 {
        self.energy.pj_per_mac(self.macs)
    }

    /// Throughput in MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }
}

/// The output tensor plus the run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// Output activations (INT32 accumulators, pre-quantization), in
    /// `(N, M, P, Q)` order.
    pub oacts: Tensor4<i32>,
    /// Performance/energy report.
    pub report: RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let report = RunReport {
            cycles: 100,
            stall_cycles: 0,
            macs: 400,
            birrd_passes: 10,
            birrd_adds: 30,
            iact_stats: AccessStats::default(),
            oact_stats: AccessStats::default(),
            utilization: 1.0,
            energy: EnergyBreakdown {
                compute_pj: 200.0,
                ..Default::default()
            },
        };
        assert!((report.macs_per_cycle() - 4.0).abs() < 1e-12);
        assert!((report.pj_per_mac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_guard() {
        let report = RunReport {
            cycles: 0,
            stall_cycles: 0,
            macs: 0,
            birrd_passes: 0,
            birrd_adds: 0,
            iact_stats: AccessStats::default(),
            oact_stats: AccessStats::default(),
            utilization: 0.0,
            energy: EnergyBreakdown::default(),
        };
        assert_eq!(report.macs_per_cycle(), 0.0);
        assert_eq!(report.pj_per_mac(), 0.0);
    }
}
