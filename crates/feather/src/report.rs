//! Results of running a layer — or a whole layer pipeline — on the
//! functional simulator.

use feather_arch::energy::EnergyBreakdown;
use feather_arch::tensor::Tensor4;
use feather_memsim::AccessStats;
use serde::{Deserialize, Serialize};

/// Performance/energy accounting for one layer execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles, including pipeline fill/drain and any stalls.
    pub cycles: u64,
    /// Cycles lost to StaB bank conflicts (zero when the mapping is concordant).
    pub stall_cycles: u64,
    /// Useful multiply-accumulates performed.
    pub macs: u64,
    /// Number of BIRRD passes (row fires).
    pub birrd_passes: u64,
    /// Number of adder activations inside BIRRD.
    pub birrd_adds: u64,
    /// StaB read-side access statistics.
    pub iact_stats: AccessStats,
    /// StaB write-side access statistics.
    pub oact_stats: AccessStats,
    /// DRAM traffic for input activations. In a pipelined run only the first
    /// layer stages its iActs from DRAM; later layers read them from the StaB
    /// half the previous layer filled, so this is zero for them.
    pub dram_iact_bytes: u64,
    /// DRAM traffic for weights (streamed once per layer).
    pub dram_weight_bytes: u64,
    /// DRAM traffic for output activations. In a pipelined run intermediate
    /// oActs stay on chip; only the last layer writes back.
    pub dram_oact_bytes: u64,
    /// Steady-state compute utilization (useful MACs / PE·cycles).
    pub utilization: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Energy per MAC in pJ.
    pub fn pj_per_mac(&self) -> f64 {
        self.energy.pj_per_mac(self.macs)
    }

    /// Throughput in MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// Total DRAM traffic of this layer (operands + results).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_iact_bytes + self.dram_weight_bytes + self.dram_oact_bytes
    }

    /// DRAM traffic spent on activations only (iActs staged + oActs drained).
    pub fn dram_activation_bytes(&self) -> u64 {
        self.dram_iact_bytes + self.dram_oact_bytes
    }
}

/// The output tensor plus the run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// Output activations (INT32 accumulators, pre-quantization), in
    /// `(N, M, P, Q)` order.
    pub oacts: Tensor4<i32>,
    /// Performance/energy report.
    pub report: RunReport,
}

/// One layer's entry in a [`NetworkReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// The layer's run report, with *pipelined* DRAM accounting (intermediate
    /// activations never touch DRAM).
    pub report: RunReport,
    /// The activation DRAM bytes this layer would have paid if executed
    /// layer-at-a-time (stage iActs from DRAM, drain oActs back) — the
    /// baseline the pipeline's savings are measured against.
    pub standalone_activation_dram_bytes: u64,
}

/// Aggregate accounting for a multi-layer pipelined execution
/// ([`NetworkSession`](crate::session::NetworkSession)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Per-layer entries, in execution order.
    pub layers: Vec<LayerSummary>,
    /// Number of StaB ping/pong swaps performed: one per executed layer —
    /// every layer (including the last) ends with the boundary swap that
    /// publishes its oActs to the active side, so this equals the layer
    /// count.
    pub stab_swaps: u64,
}

impl NetworkReport {
    /// Total cycles across all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.report.cycles).sum()
    }

    /// Total useful MACs across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.report.macs).sum()
    }

    /// Total cycles lost to bank conflicts.
    pub fn total_stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.report.stall_cycles).sum()
    }

    /// Total energy in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.report.energy.total_pj()).sum()
    }

    /// Total DRAM traffic of the pipelined execution.
    pub fn dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.report.dram_bytes()).sum()
    }

    /// Activation DRAM traffic of the pipelined execution: the first layer's
    /// iAct staging plus the last layer's oAct drain.
    pub fn dram_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.report.dram_activation_bytes())
            .sum()
    }

    /// Activation DRAM traffic a layer-at-a-time execution of the same
    /// network would pay (every layer stages and drains through DRAM).
    pub fn layer_at_a_time_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.standalone_activation_dram_bytes)
            .sum()
    }

    /// Fraction of activation DRAM traffic the pipeline eliminated relative
    /// to layer-at-a-time execution (0 for a single-layer session).
    pub fn dram_activation_savings(&self) -> f64 {
        let baseline = self.layer_at_a_time_activation_bytes();
        if baseline == 0 {
            return 0.0;
        }
        1.0 - self.dram_activation_bytes() as f64 / baseline as f64
    }

    /// MAC-per-PE-cycle utilization over the whole run.
    pub fn utilization(&self, num_pes: usize) -> f64 {
        let denom = self.total_cycles().max(1) as f64 * num_pes.max(1) as f64;
        (self.total_macs() as f64 / denom).min(1.0)
    }
}

/// The final output tensor plus the aggregate report of a pipelined run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkRun {
    /// The last layer's output activations (INT32 accumulators,
    /// pre-quantization), in `(N, M, P, Q)` order.
    pub oacts: Tensor4<i32>,
    /// Aggregate per-layer + network accounting.
    pub report: NetworkReport,
}

/// One linear segment's entry in a [`GraphReport`]: the pipelined
/// [`NetworkReport`] of its layers, with graph-level DRAM accounting (an
/// intermediate segment's boundary tensors stay on chip — in the StaB
/// ping/pong handoff or the shortcut scratch region — so only the graph's
/// true input/output segments carry activation DRAM traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentSummary {
    /// Names of the nodes executed, in order.
    pub nodes: Vec<String>,
    /// The segment's pipelined execution report.
    pub report: NetworkReport,
    /// `true` when the segment's input was fetched from the shortcut scratch
    /// region rather than handed over in the StaB (projection branches).
    pub input_from_scratch: bool,
}

/// One residual join's entry in a [`GraphReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSummary {
    /// The add node's name.
    pub name: String,
    /// Elements joined.
    pub elements: u64,
    /// Elements that saturated at the INT8 boundary.
    pub saturated: u64,
}

/// Aggregate accounting for a whole-graph execution
/// ([`GraphSession`](crate::graph_session::GraphSession)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphReport {
    /// Per-segment entries, in execution order.
    pub segments: Vec<SegmentSummary>,
    /// Per-join entries, in execution order.
    pub joins: Vec<JoinSummary>,
    /// Traffic of the shortcut scratch region (element counts are bytes for
    /// the INT8 tensors parked there).
    pub scratch: AccessStats,
    /// High-water mark of the scratch region in elements — the capacity a
    /// real shortcut SRAM would need.
    pub scratch_peak_elems: u64,
}

impl GraphReport {
    /// Iterates over every executed layer's summary, across all segments.
    pub fn layers(&self) -> impl Iterator<Item = &LayerSummary> {
        self.segments.iter().flat_map(|s| s.report.layers.iter())
    }

    /// Total cycles across all segments.
    pub fn total_cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.report.total_cycles()).sum()
    }

    /// Total useful MACs across all segments.
    pub fn total_macs(&self) -> u64 {
        self.segments.iter().map(|s| s.report.total_macs()).sum()
    }

    /// Total StaB ping/pong swaps (one per executed layer).
    pub fn stab_swaps(&self) -> u64 {
        self.segments.iter().map(|s| s.report.stab_swaps).sum()
    }

    /// Total energy in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.report.total_energy_pj())
            .sum()
    }

    /// Total DRAM traffic of the graph execution.
    pub fn dram_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.report.dram_bytes()).sum()
    }

    /// Activation DRAM traffic: only the graph input staging and the graph
    /// output drain (every other boundary stayed on chip).
    pub fn dram_activation_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.report.dram_activation_bytes())
            .sum()
    }

    /// Activation DRAM traffic a layer-at-a-time execution would pay (every
    /// layer staging its iActs from DRAM and draining its oActs back).
    pub fn layer_at_a_time_activation_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.report.layer_at_a_time_activation_bytes())
            .sum()
    }

    /// Fraction of activation DRAM traffic eliminated relative to
    /// layer-at-a-time execution.
    pub fn dram_activation_savings(&self) -> f64 {
        let baseline = self.layer_at_a_time_activation_bytes();
        if baseline == 0 {
            return 0.0;
        }
        1.0 - self.dram_activation_bytes() as f64 / baseline as f64
    }

    /// Bytes moved through the shortcut scratch region (INT8 parks + fetches).
    pub fn shortcut_bytes(&self) -> u64 {
        self.scratch.element_writes + self.scratch.element_reads
    }

    /// Total residual-add elements that saturated at the INT8 boundary.
    pub fn saturated_join_elements(&self) -> u64 {
        self.joins.iter().map(|j| j.saturated).sum()
    }

    /// MAC-per-PE-cycle utilization over the whole run.
    pub fn utilization(&self, num_pes: usize) -> f64 {
        let denom = self.total_cycles().max(1) as f64 * num_pes.max(1) as f64;
        (self.total_macs() as f64 / denom).min(1.0)
    }
}

/// The graph output tensor plus the aggregate report of a DAG execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphRun {
    /// The output node's activations: INT32 accumulators (pre-quantization)
    /// when the graph ends in a conv-like node, or the widened INT8 join
    /// result when it ends in a residual add.
    pub oacts: Tensor4<i32>,
    /// Aggregate per-segment + per-join accounting.
    pub report: GraphReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, macs: u64) -> RunReport {
        RunReport {
            cycles,
            stall_cycles: 0,
            macs,
            birrd_passes: 10,
            birrd_adds: 30,
            iact_stats: AccessStats::default(),
            oact_stats: AccessStats::default(),
            dram_iact_bytes: 0,
            dram_weight_bytes: 0,
            dram_oact_bytes: 0,
            utilization: 1.0,
            energy: EnergyBreakdown {
                compute_pj: 200.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn derived_metrics() {
        let report = report(100, 400);
        assert!((report.macs_per_cycle() - 4.0).abs() < 1e-12);
        assert!((report.pj_per_mac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_guard() {
        let mut r = report(0, 0);
        r.utilization = 0.0;
        r.energy = EnergyBreakdown::default();
        assert_eq!(r.macs_per_cycle(), 0.0);
        assert_eq!(r.pj_per_mac(), 0.0);
    }

    #[test]
    fn network_report_aggregates_and_savings() {
        let mut first = report(100, 400);
        first.dram_iact_bytes = 1000;
        first.dram_weight_bytes = 64;
        let mut last = report(50, 200);
        last.dram_oact_bytes = 500;
        last.dram_weight_bytes = 32;
        let net = NetworkReport {
            layers: vec![
                LayerSummary {
                    name: "l0".into(),
                    report: first,
                    standalone_activation_dram_bytes: 1000 + 800,
                },
                LayerSummary {
                    name: "l1".into(),
                    report: last,
                    standalone_activation_dram_bytes: 800 + 500,
                },
            ],
            stab_swaps: 2,
        };
        assert_eq!(net.total_cycles(), 150);
        assert_eq!(net.total_macs(), 600);
        assert_eq!(net.dram_bytes(), 1000 + 64 + 500 + 32);
        assert_eq!(net.dram_activation_bytes(), 1500);
        assert_eq!(net.layer_at_a_time_activation_bytes(), 3100);
        assert!(net.dram_activation_bytes() < net.layer_at_a_time_activation_bytes());
        let savings = net.dram_activation_savings();
        assert!(savings > 0.5 && savings < 0.52, "{savings}");
        assert!((net.utilization(4) - 1.0).abs() < 1e-12);
    }
}
