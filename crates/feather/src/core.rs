//! The shared tile-loop core of the functional executor, optimized for
//! evaluations-per-second:
//!
//! * **Compiled BIRRD routes** — every distinct reduction-reorder request is
//!   routed once and lowered to a flat gather-sum program
//!   ([`feather_birrd::CompiledRoute`]); steady-state fires are pure index
//!   arithmetic over reusable scratch, with the programs shared across
//!   layers (and worker threads) through a [`RouteCache`].
//! * **Zero-alloc steady state** — weight staging, fire buses, reduction
//!   groups and BIRRD input/output vectors live in span-lifetime scratch;
//!   iAct/oAct addressing goes through precompiled per-dimension location
//!   tables ([`feather_arch::layout::LocationPlan4`]) and precomputed
//!   `h`/`w` coordinate tables instead of per-element coordinate maps.
//! * **Thread-parallel sharding** — the outer `(weight-tile, batch)` loop is
//!   sharded across `std::thread::scope` workers (the same no-registry
//!   pattern as `layoutloop::PlanParallelism`). Each worker simulates its
//!   shard on forked buffers ([`feather_memsim::FunctionalBuffer::fork`])
//!   writing disjoint output regions, with private statistics and counters
//!   merged at join; per-tile timing is reduced *after* the join from the
//!   summed fire counts, so the parallel run is bit-identical to the serial
//!   one — outputs, statistics and cycle counts alike.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use feather_arch::layout::{Location, LocationPlan4};
use feather_arch::tensor::Tensor4;
use feather_arch::workload::ConvLayer;
use feather_arch::{ArchError, Dim};
use feather_birrd::{Birrd, CompiledRoute, ReductionRequest};
use feather_memsim::{FunctionalBuffer, LayoutView};
use feather_nest::{NestArray, NestTiming};

use crate::config::FeatherConfig;
use crate::mapping::LayerMapping;

/// Raw counters produced by one pass of the inner tile loop.
pub(crate) struct CoreRun {
    /// Compute cycles (tile timings + serialized BIRRD passes), excluding
    /// bank-conflict stalls — the caller charges those from the buffer stats.
    pub cycles: u64,
    /// Number of BIRRD passes (row fires that produced live outputs).
    pub birrd_passes: u64,
    /// Number of adder activations inside BIRRD.
    pub birrd_adds: u64,
    /// Useful MACs performed.
    pub macs: u64,
}

/// Hit/miss/eviction counters and the current size of a [`RouteCache`] —
/// what a long-running serving process watches to size the cache.
///
/// The counters reflect *shared-map* traffic: steady-state lookups are
/// absorbed by the lock-free worker-local L1 maps (which live for one layer
/// span), so `hits + misses` counts L1 misses, and `misses` counts actual
/// route-and-compile work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups served by the shared compiled-route map.
    pub hits: u64,
    /// Lookups that had to route and compile a fresh program.
    pub misses: u64,
    /// Programs dropped to keep the shared map within its capacity.
    pub evictions: u64,
    /// Compiled programs currently resident in the shared map.
    pub entries: usize,
}

/// Default capacity of a [`RouteCache`]'s shared map. A whole scaled
/// ResNet-50 graph needs well under a hundred distinct reduce-reorder
/// programs, so this comfortably holds many models' working sets while
/// bounding a serving process that churns through arbitrary graphs.
const ROUTE_CACHE_CAPACITY: usize = 1024;

/// The bounded shared map behind a [`RouteCache`]: compiled programs keyed by
/// request, plus the insertion order that drives FIFO eviction.
#[derive(Debug, Default)]
struct RouteMap {
    routes: HashMap<ReductionRequest, Arc<CompiledRoute>>,
    order: VecDeque<ReductionRequest>,
}

/// A shared, thread-safe memo of compiled BIRRD route programs.
///
/// The controller replays the same handful of reduce-reorder patterns
/// millions of times per layer and routing is deterministic per request, so
/// one routed-and-compiled program per distinct request serves a whole
/// network run — and, because sessions keep their cache in an [`Arc`],
/// every subsequent run of the same session (and every segment of a graph
/// session) too. Workers keep a lock-free local map in front of this shared
/// map, so steady-state lookups never touch the lock.
///
/// The shared map is bounded: once `capacity` distinct programs are resident,
/// inserting a new one evicts the oldest (FIFO). Eviction only drops the
/// shared reference — workers holding the program in their L1 (or in-flight
/// `Arc`s) keep using it; a later lookup simply recompiles. Hit/miss/eviction
/// counters are exposed through [`RouteCache::stats`].
#[derive(Debug)]
pub(crate) struct RouteCache {
    shared: RwLock<RouteMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for RouteCache {
    fn default() -> Self {
        RouteCache::new()
    }
}

/// The worker-local L1 in front of a [`RouteCache`].
type LocalRoutes = HashMap<ReductionRequest, Arc<CompiledRoute>>;

impl RouteCache {
    pub(crate) fn new() -> Self {
        RouteCache::with_capacity(ROUTE_CACHE_CAPACITY)
    }

    /// A cache bounded to `capacity` resident programs (at least one).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        RouteCache {
            shared: RwLock::new(RouteMap::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A snapshot of the shared-map counters and occupancy.
    pub(crate) fn stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shared
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .routes
                .len(),
        }
    }

    /// Resolves a request to its compiled program: worker-local map, then the
    /// shared map, then route + compile (publishing the result to both). The
    /// request is borrowed so the caller can reuse one scratch request across
    /// fires; it is only cloned on the rare local-map miss.
    fn lookup(
        &self,
        birrd: &Birrd,
        request: &ReductionRequest,
        local: &mut LocalRoutes,
    ) -> Result<Arc<CompiledRoute>, ArchError> {
        if let Some(hit) = local.get(request) {
            return Ok(hit.clone());
        }
        let shared_hit = self
            .shared
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .routes
            .get(request)
            .cloned();
        let compiled = match shared_hit {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                hit
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let config = birrd
                    .route(request)
                    .map_err(|e| ArchError::InvalidDataflow(e.to_string()))?;
                let compiled = Arc::new(
                    CompiledRoute::compile(birrd.topology(), &config)
                        .expect("routed configuration always matches the network shape"),
                );
                self.publish(request, compiled)
            }
        };
        local.insert(request.clone(), compiled.clone());
        Ok(compiled)
    }

    /// Installs a freshly-compiled program in the shared map, evicting the
    /// oldest resident program if the map is full. Another worker may have
    /// routed the same request concurrently; keep whichever program landed
    /// first (they are identical — routing is deterministic).
    fn publish(
        &self,
        request: &ReductionRequest,
        compiled: Arc<CompiledRoute>,
    ) -> Arc<CompiledRoute> {
        let mut shared = self.shared.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = shared.routes.get(request) {
            return existing.clone();
        }
        while shared.routes.len() >= self.capacity {
            let oldest = shared.order.pop_front().expect("map is non-empty");
            shared.routes.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shared.routes.insert(request.clone(), compiled.clone());
        shared.order.push_back(request.clone());
        compiled
    }
}

/// Records the exact sequence of compiled routes a serial layer pass
/// consumes, for ahead-of-time compilation ([`crate::program`]).
///
/// Routes are a pure function of layer geometry (the mapped-lane pattern and
/// the oAct layout's bank assignment), never of data, so one zero-input
/// collect pass captures the stream any future run will consume. The stream
/// is stored as indices into a deduplicated slot table — the replay path
/// borrows `&CompiledRoute` straight from the slot, with no hashing and no
/// `Arc` traffic.
#[derive(Debug, Default)]
pub(crate) struct RouteRecorder {
    slot_of: HashMap<ReductionRequest, u32>,
    slots: Vec<Arc<CompiledRoute>>,
    requests: Vec<ReductionRequest>,
    stream: Vec<u32>,
    block_starts: Vec<u32>,
}

impl RouteRecorder {
    pub(crate) fn new() -> Self {
        RouteRecorder::default()
    }

    /// Marks the start of work block `block` (one `(wt_m, wt_c, n)` triple).
    /// The serial collect pass visits blocks in order, so the start offsets
    /// land densely; sharded replay workers jump their cursor to
    /// `block_starts[block]` when they pick up a block mid-stream.
    fn enter_block(&mut self, block: usize) {
        debug_assert_eq!(
            block,
            self.block_starts.len(),
            "collect pass must visit blocks in order"
        );
        self.block_starts.push(self.stream.len() as u32);
    }

    fn record(&mut self, request: &ReductionRequest, route: &Arc<CompiledRoute>) {
        let slot = match self.slot_of.get(request) {
            Some(&slot) => slot,
            None => {
                let slot = self.slots.len() as u32;
                self.slot_of.insert(request.clone(), slot);
                self.slots.push(route.clone());
                self.requests.push(request.clone());
                slot
            }
        };
        self.stream.push(slot);
    }

    pub(crate) fn into_stream(self) -> RouteStream {
        RouteStream {
            slots: self.slots,
            requests: self.requests,
            stream: self.stream,
            block_starts: self.block_starts,
        }
    }
}

/// A frozen route consumption sequence for one layer: the deduplicated
/// compiled programs (`slots`), the originating requests (kept so a program
/// artifact can be serialized and the routes deterministically recompiled on
/// load), the per-fire slot indices in serial order, and the stream offset at
/// which each `(wt_m, wt_c, n)` work block begins.
#[derive(Debug, Clone)]
pub(crate) struct RouteStream {
    pub(crate) slots: Vec<Arc<CompiledRoute>>,
    pub(crate) requests: Vec<ReductionRequest>,
    pub(crate) stream: Vec<u32>,
    pub(crate) block_starts: Vec<u32>,
}

impl RouteStream {
    /// Rebuilds a stream from its serialized parts by re-routing every
    /// request (routing is deterministic, so the recompiled programs are
    /// identical to the recorded ones).
    pub(crate) fn recompile(
        birrd: &Birrd,
        requests: Vec<ReductionRequest>,
        stream: Vec<u32>,
        block_starts: Vec<u32>,
    ) -> Result<Self, ArchError> {
        let slots = requests
            .iter()
            .map(|request| {
                let config = birrd
                    .route(request)
                    .map_err(|e| ArchError::InvalidDataflow(e.to_string()))?;
                Ok(Arc::new(
                    CompiledRoute::compile(birrd.topology(), &config)
                        .expect("routed configuration always matches the network shape"),
                ))
            })
            .collect::<Result<Vec<_>, ArchError>>()?;
        for &slot in &stream {
            if slot as usize >= slots.len() {
                return Err(ArchError::InvalidDataflow(
                    "route stream references an out-of-range slot".into(),
                ));
            }
        }
        Ok(RouteStream {
            slots,
            requests,
            stream,
            block_starts,
        })
    }
}

/// How `run_conv_core` resolves reduce-reorder routes for a layer pass.
pub(crate) enum RouteExecution<'a> {
    /// Interpreted path: hash each request through the shared [`RouteCache`]
    /// (with a worker-local L1 in front).
    Cached(&'a RouteCache),
    /// Compile path: like `Cached`, but also record the serial consumption
    /// order into a [`RouteRecorder`]. Forces a single worker.
    Collect(&'a RouteCache, &'a mut RouteRecorder),
    /// Replay path: consume a prerecorded [`RouteStream`] cursor-style —
    /// no request building, no hashing, no `Arc` clones.
    Replay(&'a RouteStream),
}

/// The per-worker view of a [`RouteExecution`].
enum SpanRoutes<'a> {
    Cached {
        cache: &'a RouteCache,
        local: LocalRoutes,
    },
    Collect {
        cache: &'a RouteCache,
        local: LocalRoutes,
        recorder: &'a mut RouteRecorder,
    },
    Replay {
        stream: &'a RouteStream,
        pos: usize,
    },
}

/// The shareable (`Copy`) subset of [`RouteExecution`] handed to sharded
/// workers; `Collect` is excluded because recording is inherently serial.
#[derive(Clone, Copy)]
enum WorkerRoutes<'a> {
    Cached(&'a RouteCache),
    Replay(&'a RouteStream),
}

impl<'a> WorkerRoutes<'a> {
    fn span_routes(self) -> SpanRoutes<'a> {
        match self {
            WorkerRoutes::Cached(cache) => SpanRoutes::Cached {
                cache,
                local: LocalRoutes::new(),
            },
            WorkerRoutes::Replay(stream) => SpanRoutes::Replay { stream, pos: 0 },
        }
    }
}

/// Fills the reusable scratch `request` from the current fire batch: lane
/// spans of every batched group plus their destination banks.
fn fill_request(
    request: &mut ReductionRequest,
    batch: &[FireGroup],
    mapped: &[bool],
    c_cols: usize,
) {
    request.input_groups.fill(None);
    request.group_destinations.clear();
    for (gid, g) in batch.iter().enumerate() {
        let lane = g.q_lane * c_cols;
        let span = lane..lane + c_cols;
        for (live, slot) in mapped[span.clone()]
            .iter()
            .zip(&mut request.input_groups[span])
        {
            if *live {
                *slot = Some(gid);
            }
        }
        request.group_destinations.insert(gid, g.bank);
    }
}

/// Number of worker threads the executor uses when none is requested
/// explicitly: the `FEATHER_THREADS` environment variable if set to a
/// positive integer, otherwise the machine's available parallelism
/// (`FEATHER_THREADS=1` forces the serial path).
///
/// The variable is re-read on every call — a server that adjusts
/// `FEATHER_THREADS` between sessions (or a test that sets it after some
/// other test already ran a layer) sees the new value immediately instead of
/// a process-lifetime latch.
pub fn default_threads() -> usize {
    match std::env::var("FEATHER_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many (reference-kernel) MACs a layer is not worth forking
/// buffers and spawning workers for; auto-threading falls back to serial.
/// An explicit thread request always wins.
const AUTO_PARALLEL_MIN_MACS: u64 = 16_384;

/// Precompiles an iAct layout over a layer's `(N, C, H, W)` extents — the
/// single source of the iAct coordinate order used by the executor.
pub(crate) fn iact_plan(layout: &feather_arch::layout::Layout, layer: &ConvLayer) -> LocationPlan4 {
    layout.plan4([
        (Dim::N, layer.n),
        (Dim::C, layer.c),
        (Dim::H, layer.h),
        (Dim::W, layer.w),
    ])
}

/// Precompiles an oAct layout over a layer's `(N, M, P, Q)` extents — the
/// single source of the oAct coordinate order used by the executor.
pub(crate) fn oact_plan(layout: &feather_arch::layout::Layout, layer: &ConvLayer) -> LocationPlan4 {
    layout.plan4([
        (Dim::N, layer.n),
        (Dim::M, layer.m),
        (Dim::P, layer.output_height()),
        (Dim::Q, layer.output_width()),
    ])
}

/// Everything the tile loop needs that is immutable across the whole layer:
/// tiling factors, the precompiled address plans, the padded-coordinate
/// tables and the BIRRD instance. Shared by reference across workers.
///
/// The struct is *owned* (no borrows) so a compiled [`crate::program::Program`]
/// can build it once and replay it for the lifetime of a serving process; the
/// interpreted path simply constructs one per run.
#[derive(Debug, Clone)]
pub(crate) struct LayerExec {
    pub(crate) layer: ConvLayer,
    pub(crate) mapping: LayerMapping,
    rows: usize,
    cols: usize,
    m_rows: usize,
    c_cols: usize,
    q_cols: usize,
    m_tiles: usize,
    c_tiles: usize,
    q_tiles: usize,
    p_total: usize,
    q_total: usize,
    rs: usize,
    depthwise: bool,
    birrd: Birrd,
    /// `(N, C, H, W)` location plan for the iAct view.
    iact_plan: LocationPlan4,
    /// `(N, M, P, Q)` location plan for the oAct view.
    oact_plan: LocationPlan4,
    /// `h_table[p * R + r]` = input row for output row `p` at kernel row `r`
    /// (`None` inside the padding halo or past the input edge).
    h_table: Vec<Option<usize>>,
    /// `w_table[q * S + s]` = input column for output column `q` at kernel
    /// column `s`.
    w_table: Vec<Option<usize>>,
}

impl LayerExec {
    pub(crate) fn new(
        config: &FeatherConfig,
        layer: &ConvLayer,
        mapping: &LayerMapping,
    ) -> Result<Self, ArchError> {
        let rows = config.rows;
        let cols = config.cols;
        let p_total = layer.output_height();
        let q_total = layer.output_width();
        // Depthwise layers collapse the channel reduction: each output
        // channel consumes only its own input channel.
        let depthwise = layer.is_depthwise();
        let c_cols = if depthwise { 1 } else { mapping.c_cols };
        let q_cols = mapping.q_cols.min(cols / c_cols).max(1);
        let m_rows = mapping.m_rows;
        let m_tiles = layer.m.div_ceil(m_rows);
        let c_tiles = if depthwise {
            1
        } else {
            layer.c.div_ceil(c_cols)
        };
        let q_tiles = q_total.div_ceil(q_cols);
        let birrd = Birrd::new(cols).map_err(|e| ArchError::InvalidDataflow(e.to_string()))?;

        let iact_plan = iact_plan(&mapping.iact_layout, layer);
        let oact_plan = oact_plan(&mapping.oact_layout, layer);
        let in_bounds = |raw: usize, extent: usize| {
            (raw >= layer.padding && raw - layer.padding < extent).then(|| raw - layer.padding)
        };
        let h_table = (0..p_total * layer.r)
            .map(|i| in_bounds((i / layer.r) * layer.stride + i % layer.r, layer.h))
            .collect();
        let w_table = (0..q_total * layer.s)
            .map(|i| in_bounds((i / layer.s) * layer.stride + i % layer.s, layer.w))
            .collect();

        Ok(LayerExec {
            layer: layer.clone(),
            mapping: mapping.clone(),
            rows,
            cols,
            m_rows,
            c_cols,
            q_cols,
            m_tiles,
            c_tiles,
            q_tiles,
            p_total,
            q_total,
            rs: layer.r * layer.s,
            depthwise,
            birrd,
            iact_plan,
            oact_plan,
            h_table,
            w_table,
        })
    }

    /// Work units for sharding: one per `(weight tile, batch sample)` pair.
    fn units(&self) -> usize {
        self.m_tiles * self.layer.n
    }

    /// The layer's BIRRD instance (used to re-route recorded requests when
    /// loading a program artifact).
    pub(crate) fn birrd(&self) -> &Birrd {
        &self.birrd
    }

    /// Number of `(wt_m, wt_c, n)` work blocks a recorded route stream must
    /// cover — one entry per `RouteStream::block_starts` slot.
    pub(crate) fn block_count(&self) -> usize {
        self.m_tiles * self.c_tiles * self.layer.n
    }
}

/// One reduction group of a row fire: the column-lane span it gathers from,
/// the StaB bank its sum must reach, and the output cell it accumulates into.
#[derive(Clone, Copy)]
struct FireGroup {
    q_lane: usize,
    bank: usize,
    loc: Location,
}

/// Per-worker result: everything needed to reconstruct the serial counters.
struct SpanAccum {
    /// Row fires per `(wt_m, wt_c)` tile (index `wt_m * c_tiles + wt_c`);
    /// tile timing is derived from the *summed* counts after the join so the
    /// shard boundaries never show up in the cycle model.
    tile_fires: Vec<u64>,
    /// Serialization cycles charged for multi-batch BIRRD fires.
    extra_cycles: u64,
    birrd_passes: u64,
    birrd_adds: u64,
    macs: u64,
}

/// The inner tile loop shared by the single-layer entry point and the
/// network-level pipeline executor: weight-stationary tiling over `(M, C)`,
/// Phase-1 local temporal reduction in NEST, Phase-2 row fires through BIRRD
/// with Reorder-in-Reduction into the output view.
///
/// `iact` is the active StaB half (the layer's inputs, already staged in
/// `mapping.iact_layout`); `oact` is the shadow half the reduced outputs land
/// in, addressed by `mapping.oact_layout`. `routes` selects how reduce-reorder
/// programs are resolved (cached lookup, cached + record, or replay of a
/// recorded stream). `expose_first_weight_load` charges the cold weight load
/// of the first tile; a pipelined layer whose weights were prefetched during
/// the previous layer passes `false`. `threads` requests an exact worker
/// count (`Some(1)` forces serial); `None` auto-sizes from
/// [`default_threads`] for layers with enough work.
pub(crate) fn run_conv_core(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    routes: RouteExecution<'_>,
    expose_first_weight_load: bool,
    threads: Option<usize>,
) -> Result<CoreRun, ArchError> {
    let units_total = ctx.units();
    let workers = effective_workers(threads, &ctx.layer, units_total);

    let spans = match routes {
        RouteExecution::Collect(cache, recorder) => {
            let mut span_routes = SpanRoutes::Collect {
                cache,
                local: LocalRoutes::new(),
                recorder,
            };
            vec![run_span(
                ctx,
                weights,
                0..units_total,
                iact,
                oact,
                &mut span_routes,
            )?]
        }
        RouteExecution::Cached(cache) => run_worker_spans(
            ctx,
            weights,
            workers,
            iact,
            oact,
            WorkerRoutes::Cached(cache),
        )?,
        RouteExecution::Replay(stream) => run_worker_spans(
            ctx,
            weights,
            workers,
            iact,
            oact,
            WorkerRoutes::Replay(stream),
        )?,
    };

    // Reduce: sum the fire counts per tile across workers, then charge each
    // tile's timing once — exactly what the serial loop computes inline.
    let timing = NestTiming::new(ctx.rows, ctx.cols, ctx.birrd.latency_cycles());
    let mut run = CoreRun {
        cycles: 0,
        birrd_passes: 0,
        birrd_adds: 0,
        macs: 0,
    };
    let mut tile_fires = vec![0u64; ctx.m_tiles * ctx.c_tiles];
    for span in &spans {
        for (tile, fires) in span.tile_fires.iter().enumerate() {
            tile_fires[tile] += fires;
        }
        run.cycles += span.extra_cycles;
        run.birrd_passes += span.birrd_passes;
        run.birrd_adds += span.birrd_adds;
        run.macs += span.macs;
    }
    for (tile, &fires) in tile_fires.iter().enumerate() {
        let first_tile = tile == 0 && expose_first_weight_load;
        run.cycles += timing.tile(ctx.rs, fires, ctx.rs, first_tile).total();
    }
    Ok(run)
}

/// Resolves the worker count a layer pass actually shards across — the
/// single place the serial-vs-sharded decision is made:
///
/// * An explicit request (`Some(n)`) is honored but clamped to the number of
///   work units; `Some(1)` forces the serial path.
/// * The auto path (`None`) uses [`default_threads`] only for layers with
///   enough work ([`AUTO_PARALLEL_MIN_MACS`]); below that it stays serial.
///
/// Whenever this resolves to 1 — including an explicit `Some(8)` on a layer
/// with a single `(weight-tile, batch)` unit, or the auto path on a
/// single-thread host where [`default_threads`] is 1 — the dispatcher runs
/// the plain serial span and never pays fork/absorb overhead for workers
/// that cannot help.
pub(crate) fn effective_workers(
    threads: Option<usize>,
    layer: &ConvLayer,
    units_total: usize,
) -> usize {
    let requested = match threads {
        Some(n) => n.max(1),
        None if reference_macs(layer) >= AUTO_PARALLEL_MIN_MACS => default_threads(),
        None => 1,
    };
    requested.min(units_total)
}

/// MACs of the reference kernel for this layer — the work estimate behind the
/// auto-parallelism threshold.
fn reference_macs(layer: &ConvLayer) -> u64 {
    let c_red = if layer.is_depthwise() { 1 } else { layer.c };
    (layer.n * layer.m * layer.output_height() * layer.output_width()) as u64
        * (c_red * layer.r * layer.s) as u64
}

/// Dispatches the full unit range serially or sharded, per `workers`.
fn run_worker_spans(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    workers: usize,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    routes: WorkerRoutes<'_>,
) -> Result<Vec<SpanAccum>, ArchError> {
    let units_total = ctx.units();
    if workers <= 1 {
        return Ok(vec![run_span(
            ctx,
            weights,
            0..units_total,
            iact,
            oact,
            &mut routes.span_routes(),
        )?]);
    }
    run_sharded(ctx, weights, workers, iact, oact, routes)
}

/// Runs the span `0..units` split across `workers` scoped threads, each on
/// forked buffers, and absorbs data + statistics back into the real views.
fn run_sharded(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    workers: usize,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    routes: WorkerRoutes<'_>,
) -> Result<Vec<SpanAccum>, ArchError> {
    let units_total = ctx.units();
    let chunk = units_total.div_ceil(workers);
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|w| (w * chunk)..((w + 1) * chunk).min(units_total))
        .filter(|r| !r.is_empty())
        .collect();
    let idims = ctx.layer.iact_dim_sizes();
    let odims = ctx.layer.oact_dim_sizes();
    // Pristine pre-fork copies: worker changes are diffed against these at
    // the join, so absorbing one worker can never revert another's writes.
    let ibase = iact.fork_buffer();
    let obase = oact.fork_buffer();

    type WorkerOut = Result<(SpanAccum, FunctionalBuffer<i32>, FunctionalBuffer<i32>), ArchError>;
    let outcomes: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|units| {
                let mut ibuf = ibase.fork();
                let mut obuf = obase.fork();
                let (idims, odims) = (&idims, &odims);
                scope.spawn(move || -> WorkerOut {
                    let accum = {
                        let mut iview = LayoutView::new(&mut ibuf, &ctx.mapping.iact_layout, idims);
                        let mut oview = LayoutView::new(&mut obuf, &ctx.mapping.oact_layout, odims);
                        run_span(
                            ctx,
                            weights,
                            units,
                            &mut iview,
                            &mut oview,
                            &mut routes.span_routes(),
                        )?
                    };
                    Ok((accum, ibuf, obuf))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    });

    let mut spans = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (accum, ibuf, obuf) = outcome?;
        iact.absorb(&ibuf, &ibase);
        oact.absorb(&obuf, &obase);
        spans.push(accum);
    }
    Ok(spans)
}

/// Simulates the contiguous unit range `units` (units flatten the
/// `(wt_m, n)` loop, `n` innermost). This is the whole hot loop; everything
/// it allocates lives for the span.
fn run_span(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    units: Range<usize>,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    routes: &mut SpanRoutes<'_>,
) -> Result<SpanAccum, ArchError> {
    let cols = ctx.cols;
    let layer = &ctx.layer;
    let mut nest = NestArray::new(ctx.rows, cols);
    let mut accum = SpanAccum {
        tile_fires: vec![0; ctx.m_tiles * ctx.c_tiles],
        extra_cycles: 0,
        birrd_passes: 0,
        birrd_adds: 0,
        macs: 0,
    };

    // Span-lifetime scratch: the steady state below is allocation-free (the
    // one exception is the reused lookup request's tiny destination map,
    // whose `BTreeMap` nodes reallocate per batch).
    let mut w_scratch = vec![0i8; ctx.rs];
    // Lane-mapping masks, one `cols`-wide row per `(qt, m_lane)` pair. The
    // mask depends only on the weight tile `(wt_m, wt_c)` and those two
    // indices — not on `(n, p)` — so it is rebuilt once per tile and merely
    // indexed inside the per-pixel hot loop.
    let mut mapped_table = vec![false; ctx.q_tiles * ctx.m_rows * cols];
    let mut bus: Vec<Option<i32>> = vec![None; cols];
    let mut inputs: Vec<Option<i64>> = vec![None; cols];
    let mut outputs: Vec<Option<i64>> = vec![None; cols];
    let mut groups: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut batch: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut pending: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut bank_used = vec![false; cols];
    let mut request = ReductionRequest {
        input_groups: vec![None; cols],
        group_destinations: BTreeMap::new(),
    };

    let n_total = layer.n;
    let mut unit = units.start;
    while unit < units.end {
        let wt_m = unit / n_total;
        let n_range = (unit % n_total)..(units.end - wt_m * n_total).min(n_total);
        unit = wt_m * n_total + n_range.end;

        for wt_c in 0..ctx.c_tiles {
            stage_weights(ctx, weights, &mut nest, wt_m, wt_c, &mut w_scratch);
            let tile = wt_m * ctx.c_tiles + wt_c;
            for qt in 0..ctx.q_tiles {
                for m_lane in 0..ctx.m_rows {
                    let m = wt_m * ctx.m_rows + m_lane;
                    let row = &mut mapped_table[(qt * ctx.m_rows + m_lane) * cols..][..cols];
                    for (col, slot) in row.iter_mut().enumerate() {
                        let q_lane = col / ctx.c_cols;
                        let q = qt * ctx.q_cols + q_lane;
                        let c = if ctx.depthwise {
                            m
                        } else {
                            wt_c * ctx.c_cols + col % ctx.c_cols
                        };
                        *slot =
                            q_lane < ctx.q_cols && q < ctx.q_total && m < layer.m && c < layer.c;
                    }
                }
            }

            for n in n_range.clone() {
                // One `(wt_m, wt_c, n)` triple is a work block with a
                // data-independent route sub-sequence; recording marks its
                // start and replay jumps its cursor there, so sharded
                // replay workers stay in sync with the serial recording.
                match routes {
                    SpanRoutes::Cached { .. } => {}
                    SpanRoutes::Collect { recorder, .. } => {
                        recorder.enter_block(tile * n_total + n);
                    }
                    SpanRoutes::Replay { stream, pos } => {
                        *pos = stream.block_starts[tile * n_total + n] as usize;
                    }
                }
                for p in 0..ctx.p_total {
                    for qt in 0..ctx.q_tiles {
                        // ---- Phase 1: local temporal reduction ----
                        for rs_step in 0..ctx.rs {
                            let r_i = rs_step / layer.s;
                            let s_i = rs_step % layer.s;
                            let h = ctx.h_table[p * layer.r + r_i];
                            iact.begin_cycle();
                            if let Some(h) = h {
                                phase1_step(
                                    ctx, &mut nest, iact, wt_m, wt_c, n, h, s_i, qt, rs_step,
                                );
                            }
                            iact.flush_cycle();
                        }

                        // ---- Phase 2: row fires through BIRRD (RIR) ----
                        for m_lane in 0..ctx.m_rows {
                            let m = wt_m * ctx.m_rows + m_lane;
                            let mapped = &mapped_table[(qt * ctx.m_rows + m_lane) * cols..][..cols];
                            nest.fire_row_into(m_lane, mapped, &mut bus);
                            accum.tile_fires[tile] += 1;
                            if m >= layer.m {
                                continue;
                            }

                            // Build the reduction groups: one per live
                            // q_lane, destination = the StaB bank the oAct
                            // lands in under the next layer's layout.
                            groups.clear();
                            for q_lane in 0..ctx.q_cols {
                                let q = qt * ctx.q_cols + q_lane;
                                if q >= ctx.q_total {
                                    continue;
                                }
                                let lane = q_lane * ctx.c_cols;
                                if !mapped[lane..lane + ctx.c_cols].iter().any(|&b| b) {
                                    continue;
                                }
                                let loc = ctx.oact_plan.location([n, m, p, q]);
                                groups.push(FireGroup {
                                    q_lane,
                                    bank: loc.offset % cols,
                                    loc,
                                });
                            }

                            // Split into batches with unique destination
                            // banks (a concordant mapping needs one batch).
                            while !groups.is_empty() {
                                batch.clear();
                                pending.clear();
                                bank_used.fill(false);
                                for g in groups.drain(..) {
                                    if !bank_used[g.bank] {
                                        bank_used[g.bank] = true;
                                        batch.push(g);
                                    } else {
                                        pending.push(g);
                                    }
                                }
                                std::mem::swap(&mut groups, &mut pending);

                                let owned_route;
                                let route: &CompiledRoute = match routes {
                                    SpanRoutes::Replay { stream, pos } => {
                                        // The hot path: a prerecorded slot
                                        // index — no request assembly, no
                                        // hashing, no shared-map traffic.
                                        let stream: &RouteStream = stream;
                                        let slot = stream.stream[*pos] as usize;
                                        *pos += 1;
                                        &stream.slots[slot]
                                    }
                                    SpanRoutes::Cached { cache, local } => {
                                        fill_request(&mut request, &batch, mapped, ctx.c_cols);
                                        owned_route = cache.lookup(&ctx.birrd, &request, local)?;
                                        &owned_route
                                    }
                                    SpanRoutes::Collect {
                                        cache,
                                        local,
                                        recorder,
                                    } => {
                                        fill_request(&mut request, &batch, mapped, ctx.c_cols);
                                        owned_route = cache.lookup(&ctx.birrd, &request, local)?;
                                        recorder.record(&request, &owned_route);
                                        &owned_route
                                    }
                                };

                                inputs.fill(None);
                                for g in &batch {
                                    let lane = g.q_lane * ctx.c_cols;
                                    for col in lane..lane + ctx.c_cols {
                                        if mapped[col] {
                                            inputs[col] = bus[col].map(|v| v as i64);
                                        }
                                    }
                                }
                                route
                                    .run(&inputs, &mut outputs)
                                    .expect("compiled route matches the network width");
                                accum.birrd_passes += 1;
                                accum.birrd_adds += route.adder_activations() as u64;

                                oact.begin_cycle();
                                for g in &batch {
                                    let value = outputs[g.bank].unwrap_or(0) as i32;
                                    // In-situ accumulation in the output
                                    // buffer across channel tiles.
                                    let prev = oact.peek_at(g.loc).unwrap_or(0);
                                    oact.write_at(g.loc, prev + value);
                                }
                                oact.flush_cycle();
                                if !groups.is_empty() {
                                    // An extra BIRRD pass serializes the fire.
                                    accum.extra_cycles += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    accum.macs = nest.total_macs();
    Ok(accum)
}

/// One Phase-1 `rs_step` of a `(n, p, qt)` pixel group: feed every mapped PE
/// its iAct and advance the local temporal reduction. The input row `h` is
/// already validated against the padding halo.
#[allow(clippy::too_many_arguments)]
fn phase1_step(
    ctx: &LayerExec,
    nest: &mut NestArray,
    iact: &mut LayoutView<'_, i32>,
    wt_m: usize,
    wt_c: usize,
    n: usize,
    h: usize,
    s_i: usize,
    qt: usize,
    rs_step: usize,
) {
    let layer = &ctx.layer;
    let m_base = wt_m * ctx.m_rows;
    if m_base >= layer.m {
        return;
    }
    let m_lanes = ctx.m_rows.min(layer.m - m_base);
    for q_lane in 0..ctx.q_cols {
        let q = qt * ctx.q_cols + q_lane;
        if q >= ctx.q_total {
            continue;
        }
        let Some(w) = ctx.w_table[q * layer.s + s_i] else {
            continue;
        };
        for c_lane in 0..ctx.c_cols {
            let col = q_lane * ctx.c_cols + c_lane;
            if ctx.depthwise {
                // Each output channel reads its own input channel.
                for m_lane in 0..m_lanes {
                    let c = m_base + m_lane;
                    if c >= layer.c {
                        continue;
                    }
                    let value = iact
                        .read_at(ctx.iact_plan.location([n, c, h, w]))
                        .unwrap_or(0);
                    nest.mac(m_lane, col, value as i8, rs_step);
                }
            } else {
                // The same iAct is shared by every row: one accounted read,
                // broadcast to all mapped rows.
                let c = wt_c * ctx.c_cols + c_lane;
                if c >= layer.c {
                    continue;
                }
                let value = iact
                    .read_at(ctx.iact_plan.location([n, c, h, w]))
                    .unwrap_or(0);
                for m_lane in 0..m_lanes {
                    nest.mac(m_lane, col, value as i8, rs_step);
                }
            }
        }
    }
}

/// Stages one `(wt_m, wt_c)` weight tile into the NEST shadow registers and
/// swaps it in. Fully out-of-range `(m, c)` lanes are skipped outright: they
/// neither MAC nor drive the bus, so their stale registers are never read —
/// no need to stage zero vectors for ragged tail tiles.
fn stage_weights(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    nest: &mut NestArray,
    wt_m: usize,
    wt_c: usize,
    w_scratch: &mut [i8],
) {
    let layer = &ctx.layer;
    for m_lane in 0..ctx.m_rows {
        let m = wt_m * ctx.m_rows + m_lane;
        for q_lane in 0..ctx.q_cols {
            for c_lane in 0..ctx.c_cols {
                let c = if ctx.depthwise {
                    m
                } else {
                    wt_c * ctx.c_cols + c_lane
                };
                if m >= layer.m || c >= layer.c {
                    continue;
                }
                for r in 0..layer.r {
                    for s in 0..layer.s {
                        w_scratch[r * layer.s + s] = if ctx.depthwise {
                            weights.get(c, 0, r, s)
                        } else {
                            weights.get(m, c, r, s)
                        };
                    }
                }
                nest.load_weights(m_lane, q_lane * ctx.c_cols + c_lane, w_scratch);
            }
        }
    }
    nest.swap_all_weights();
}

// ---------------------------------------------------------------------------
// Batched lane-vectorized replay
//
// A second interpreter of the same recorded route stream: activations live in
// lane-striped buffers (one batch sample per lane), every op executes once
// across all lanes, and all accounting — fires, BIRRD passes, buffer stats,
// conflict stalls — describes a single sample, exactly as one scalar replay
// would produce. The control flow below mirrors `run_span` line for line;
// only the data movement is widened.
// ---------------------------------------------------------------------------

/// Batched-replay counterpart of [`run_conv_core`]: executes the layer once
/// across `lanes` batch samples held in the views' lane stripes, replaying a
/// prerecorded route stream. The returned counters equal a single scalar
/// replay's (per-sample accounting).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_conv_core_batched(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    stream: &RouteStream,
    expose_first_weight_load: bool,
    threads: Option<usize>,
    lanes: usize,
) -> Result<CoreRun, ArchError> {
    let units_total = ctx.units();
    let workers = effective_workers(threads, &ctx.layer, units_total);
    let spans = if workers <= 1 {
        vec![run_span_batched(
            ctx,
            weights,
            0..units_total,
            iact,
            oact,
            stream,
            lanes,
        )?]
    } else {
        run_sharded_batched(ctx, weights, workers, iact, oact, stream, lanes)?
    };

    let timing = NestTiming::new(ctx.rows, ctx.cols, ctx.birrd.latency_cycles());
    let mut run = CoreRun {
        cycles: 0,
        birrd_passes: 0,
        birrd_adds: 0,
        macs: 0,
    };
    let mut tile_fires = vec![0u64; ctx.m_tiles * ctx.c_tiles];
    for span in &spans {
        for (tile, fires) in span.tile_fires.iter().enumerate() {
            tile_fires[tile] += fires;
        }
        run.cycles += span.extra_cycles;
        run.birrd_passes += span.birrd_passes;
        run.birrd_adds += span.birrd_adds;
        run.macs += span.macs;
    }
    for (tile, &fires) in tile_fires.iter().enumerate() {
        let first_tile = tile == 0 && expose_first_weight_load;
        run.cycles += timing.tile(ctx.rs, fires, ctx.rs, first_tile).total();
    }
    Ok(run)
}

/// Batched counterpart of [`run_sharded`]: the forked worker buffers inherit
/// the views' lane striping, so each worker runs the batched span on its own
/// stripe copies and the absorb merges data and per-sample statistics back.
fn run_sharded_batched(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    workers: usize,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    stream: &RouteStream,
    lanes: usize,
) -> Result<Vec<SpanAccum>, ArchError> {
    let units_total = ctx.units();
    let chunk = units_total.div_ceil(workers);
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|w| (w * chunk)..((w + 1) * chunk).min(units_total))
        .filter(|r| !r.is_empty())
        .collect();
    let idims = ctx.layer.iact_dim_sizes();
    let odims = ctx.layer.oact_dim_sizes();
    let ibase = iact.fork_buffer();
    let obase = oact.fork_buffer();

    type WorkerOut = Result<(SpanAccum, FunctionalBuffer<i32>, FunctionalBuffer<i32>), ArchError>;
    let outcomes: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|units| {
                let mut ibuf = ibase.fork();
                let mut obuf = obase.fork();
                let (idims, odims) = (&idims, &odims);
                scope.spawn(move || -> WorkerOut {
                    let accum = {
                        let mut iview = LayoutView::new(&mut ibuf, &ctx.mapping.iact_layout, idims);
                        let mut oview = LayoutView::new(&mut obuf, &ctx.mapping.oact_layout, odims);
                        run_span_batched(
                            ctx, weights, units, &mut iview, &mut oview, stream, lanes,
                        )?
                    };
                    Ok((accum, ibuf, obuf))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    });

    let mut spans = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (accum, ibuf, obuf) = outcome?;
        iact.absorb(&ibuf, &ibase);
        oact.absorb(&obuf, &obase);
        spans.push(accum);
    }
    Ok(spans)
}

/// Batched counterpart of [`run_span`]: the same tile loop with lane-striped
/// data movement. Buses, BIRRD inputs and outputs are column-major stripes
/// (`cols * lanes` flat values plus a `cols`-wide shared presence mask);
/// buffer traffic goes through the stripe accessors, which account one
/// sample's accesses.
#[allow(clippy::too_many_arguments)]
fn run_span_batched(
    ctx: &LayerExec,
    weights: &Tensor4<i8>,
    units: Range<usize>,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    stream: &RouteStream,
    lanes: usize,
) -> Result<SpanAccum, ArchError> {
    let cols = ctx.cols;
    let layer = &ctx.layer;
    let mut nest = NestArray::with_lanes(ctx.rows, cols, lanes);
    let mut accum = SpanAccum {
        tile_fires: vec![0; ctx.m_tiles * ctx.c_tiles],
        extra_cycles: 0,
        birrd_passes: 0,
        birrd_adds: 0,
        macs: 0,
    };

    let mut w_scratch = vec![0i8; ctx.rs];
    let mut mapped_table = vec![false; ctx.q_tiles * ctx.m_rows * cols];
    let mut bus: Vec<i32> = vec![0; cols * lanes];
    let mut inputs: Vec<i64> = vec![0; cols * lanes];
    let mut outputs: Vec<i64> = vec![0; cols * lanes];
    let mut in_present: Vec<bool> = vec![false; cols];
    let mut out_present: Vec<bool> = vec![false; cols];
    let mut lane_vals: Vec<i8> = vec![0; lanes];
    let mut acc_scratch: Vec<i32> = vec![0; lanes];
    let mut groups: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut batch: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut pending: Vec<FireGroup> = Vec::with_capacity(ctx.q_cols);
    let mut bank_used = vec![false; cols];

    let n_total = layer.n;
    let mut unit = units.start;
    while unit < units.end {
        let wt_m = unit / n_total;
        let n_range = (unit % n_total)..(units.end - wt_m * n_total).min(n_total);
        unit = wt_m * n_total + n_range.end;

        for wt_c in 0..ctx.c_tiles {
            stage_weights(ctx, weights, &mut nest, wt_m, wt_c, &mut w_scratch);
            let tile = wt_m * ctx.c_tiles + wt_c;
            for qt in 0..ctx.q_tiles {
                for m_lane in 0..ctx.m_rows {
                    let m = wt_m * ctx.m_rows + m_lane;
                    let row = &mut mapped_table[(qt * ctx.m_rows + m_lane) * cols..][..cols];
                    for (col, slot) in row.iter_mut().enumerate() {
                        let q_lane = col / ctx.c_cols;
                        let q = qt * ctx.q_cols + q_lane;
                        let c = if ctx.depthwise {
                            m
                        } else {
                            wt_c * ctx.c_cols + col % ctx.c_cols
                        };
                        *slot =
                            q_lane < ctx.q_cols && q < ctx.q_total && m < layer.m && c < layer.c;
                    }
                }
            }

            for n in n_range.clone() {
                let mut pos = stream.block_starts[tile * n_total + n] as usize;
                for p in 0..ctx.p_total {
                    for qt in 0..ctx.q_tiles {
                        // ---- Phase 1: local temporal reduction ----
                        for rs_step in 0..ctx.rs {
                            let r_i = rs_step / layer.s;
                            let s_i = rs_step % layer.s;
                            let h = ctx.h_table[p * layer.r + r_i];
                            iact.begin_cycle();
                            if let Some(h) = h {
                                phase1_step_batched(
                                    ctx,
                                    &mut nest,
                                    iact,
                                    &mut lane_vals,
                                    wt_m,
                                    wt_c,
                                    n,
                                    h,
                                    s_i,
                                    qt,
                                    rs_step,
                                );
                            }
                            iact.flush_cycle();
                        }

                        // ---- Phase 2: row fires through BIRRD (RIR) ----
                        for m_lane in 0..ctx.m_rows {
                            let m = wt_m * ctx.m_rows + m_lane;
                            let mapped = &mapped_table[(qt * ctx.m_rows + m_lane) * cols..][..cols];
                            nest.fire_row_stripe(m_lane, mapped, &mut bus);
                            accum.tile_fires[tile] += 1;
                            if m >= layer.m {
                                continue;
                            }

                            groups.clear();
                            for q_lane in 0..ctx.q_cols {
                                let q = qt * ctx.q_cols + q_lane;
                                if q >= ctx.q_total {
                                    continue;
                                }
                                let lane = q_lane * ctx.c_cols;
                                if !mapped[lane..lane + ctx.c_cols].iter().any(|&b| b) {
                                    continue;
                                }
                                let loc = ctx.oact_plan.location([n, m, p, q]);
                                groups.push(FireGroup {
                                    q_lane,
                                    bank: loc.offset % cols,
                                    loc,
                                });
                            }

                            while !groups.is_empty() {
                                batch.clear();
                                pending.clear();
                                bank_used.fill(false);
                                for g in groups.drain(..) {
                                    if !bank_used[g.bank] {
                                        bank_used[g.bank] = true;
                                        batch.push(g);
                                    } else {
                                        pending.push(g);
                                    }
                                }
                                std::mem::swap(&mut groups, &mut pending);

                                let slot = stream.stream[pos] as usize;
                                pos += 1;
                                let route: &CompiledRoute = &stream.slots[slot];

                                in_present.fill(false);
                                for g in &batch {
                                    let lane = g.q_lane * ctx.c_cols;
                                    for col in lane..lane + ctx.c_cols {
                                        if mapped[col] {
                                            in_present[col] = true;
                                            for l in 0..lanes {
                                                inputs[col * lanes + l] =
                                                    bus[col * lanes + l] as i64;
                                            }
                                        }
                                    }
                                }
                                route
                                    .run_batched(
                                        &inputs,
                                        &in_present,
                                        lanes,
                                        &mut outputs,
                                        &mut out_present,
                                    )
                                    .expect("compiled route matches the network width");
                                accum.birrd_passes += 1;
                                accum.birrd_adds += route.adder_activations() as u64;

                                oact.begin_cycle();
                                for g in &batch {
                                    // In-situ accumulation across channel
                                    // tiles, all lanes at once; absent BIRRD
                                    // outputs contribute zero, exactly like
                                    // the scalar path's `unwrap_or(0)`.
                                    for (l, acc) in acc_scratch.iter_mut().enumerate() {
                                        let value = if out_present[g.bank] {
                                            outputs[g.bank * lanes + l] as i32
                                        } else {
                                            0
                                        };
                                        let prev = oact.peek_stripe_at(g.loc)[l].unwrap_or(0);
                                        *acc = prev + value;
                                    }
                                    for (slot, acc) in
                                        oact.write_stripe_at(g.loc).iter_mut().zip(&acc_scratch)
                                    {
                                        *slot = Some(*acc);
                                    }
                                }
                                oact.flush_cycle();
                                if !groups.is_empty() {
                                    accum.extra_cycles += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    accum.macs = nest.total_macs();
    Ok(accum)
}

/// Batched counterpart of [`phase1_step`]: one accounted stripe read per iAct
/// cell, broadcast to every mapped PE row across all lanes.
#[allow(clippy::too_many_arguments)]
fn phase1_step_batched(
    ctx: &LayerExec,
    nest: &mut NestArray,
    iact: &mut LayoutView<'_, i32>,
    lane_vals: &mut [i8],
    wt_m: usize,
    wt_c: usize,
    n: usize,
    h: usize,
    s_i: usize,
    qt: usize,
    rs_step: usize,
) {
    let layer = &ctx.layer;
    let m_base = wt_m * ctx.m_rows;
    if m_base >= layer.m {
        return;
    }
    let m_lanes = ctx.m_rows.min(layer.m - m_base);
    for q_lane in 0..ctx.q_cols {
        let q = qt * ctx.q_cols + q_lane;
        if q >= ctx.q_total {
            continue;
        }
        let Some(w) = ctx.w_table[q * layer.s + s_i] else {
            continue;
        };
        for c_lane in 0..ctx.c_cols {
            let col = q_lane * ctx.c_cols + c_lane;
            if ctx.depthwise {
                for m_lane in 0..m_lanes {
                    let c = m_base + m_lane;
                    if c >= layer.c {
                        continue;
                    }
                    let stripe = iact.read_stripe_at(ctx.iact_plan.location([n, c, h, w]));
                    for (v, cell) in lane_vals.iter_mut().zip(stripe) {
                        *v = cell.unwrap_or(0) as i8;
                    }
                    nest.mac_stripe(m_lane, col, lane_vals, rs_step);
                }
            } else {
                let c = wt_c * ctx.c_cols + c_lane;
                if c >= layer.c {
                    continue;
                }
                let stripe = iact.read_stripe_at(ctx.iact_plan.location([n, c, h, w]));
                for (v, cell) in lane_vals.iter_mut().zip(stripe) {
                    *v = cell.unwrap_or(0) as i8;
                }
                for m_lane in 0..m_lanes {
                    nest.mac_stripe(m_lane, col, lane_vals, rs_step);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate `FEATHER_THREADS` (process-global
    /// environment).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn default_threads_rereads_the_environment() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("FEATHER_THREADS", "3");
        assert_eq!(default_threads(), 3);
        // Not latched: a later change is visible immediately.
        std::env::set_var("FEATHER_THREADS", "1");
        assert_eq!(default_threads(), 1);
        std::env::set_var("FEATHER_THREADS", "not a number");
        assert_eq!(default_threads(), available_threads());
        std::env::remove_var("FEATHER_THREADS");
        assert_eq!(default_threads(), available_threads());
    }

    #[test]
    fn effective_workers_falls_back_to_serial() {
        let _guard = ENV_LOCK.lock().unwrap();
        // Big enough to clear AUTO_PARALLEL_MIN_MACS; tiny layers stay serial.
        let big = ConvLayer::new(2, 16, 16, 14, 14, 3, 3).with_padding(1);
        let small = ConvLayer::new(1, 2, 2, 4, 4, 1, 1);
        assert!(reference_macs(&big) >= AUTO_PARALLEL_MIN_MACS);
        assert!(reference_macs(&small) < AUTO_PARALLEL_MIN_MACS);

        // Explicit requests clamp to the unit count: asking for 8 workers on
        // one work unit resolves to the serial path, not a 1-worker shard.
        assert_eq!(effective_workers(Some(8), &big, 1), 1);
        assert_eq!(effective_workers(Some(8), &big, 3), 3);
        assert_eq!(effective_workers(Some(1), &big, 64), 1);
        assert_eq!(effective_workers(Some(0), &big, 64), 1);

        // Auto path: a single-thread host (FEATHER_THREADS=1) resolves to
        // serial regardless of how much work the layer has...
        std::env::set_var("FEATHER_THREADS", "1");
        assert_eq!(effective_workers(None, &big, 64), 1);
        // ...a parallel host shards big layers but never small ones.
        std::env::set_var("FEATHER_THREADS", "4");
        assert_eq!(effective_workers(None, &big, 64), 4);
        assert_eq!(effective_workers(None, &small, 64), 1);
        std::env::remove_var("FEATHER_THREADS");
    }

    /// A one-group request reducing lanes `0..lanes` into `bank`.
    fn request(cols: usize, lanes: usize, bank: usize) -> ReductionRequest {
        let mut input_groups = vec![None; cols];
        for slot in input_groups.iter_mut().take(lanes) {
            *slot = Some(0);
        }
        let mut group_destinations = BTreeMap::new();
        group_destinations.insert(0, bank);
        ReductionRequest {
            input_groups,
            group_destinations,
        }
    }

    #[test]
    fn route_cache_counts_hits_and_misses() {
        let cache = RouteCache::new();
        let birrd = Birrd::new(4).unwrap();
        let mut local = LocalRoutes::new();
        let req = request(4, 2, 1);
        cache.lookup(&birrd, &req, &mut local).unwrap();
        // A fresh worker (empty L1) hits the shared map.
        let mut other = LocalRoutes::new();
        cache.lookup(&birrd, &req, &mut other).unwrap();
        // The warm worker's L1 absorbs the lookup without touching counters.
        cache.lookup(&birrd, &req, &mut local).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn route_cache_evicts_oldest_beyond_capacity() {
        let cache = RouteCache::with_capacity(2);
        let birrd = Birrd::new(4).unwrap();
        // Distinct requests (different destination banks); a fresh L1 per
        // lookup forces every resolution through the shared map.
        for bank in 0..4 {
            let mut local = LocalRoutes::new();
            cache
                .lookup(&birrd, &request(4, 2, bank), &mut local)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
        // The oldest two were evicted; re-resolving one recompiles (a miss),
        // while the newest two still hit.
        let mut local = LocalRoutes::new();
        cache.lookup(&birrd, &request(4, 2, 0), &mut local).unwrap();
        let mut local = LocalRoutes::new();
        cache.lookup(&birrd, &request(4, 2, 3), &mut local).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn evicted_routes_remain_usable_through_live_references() {
        let cache = RouteCache::with_capacity(1);
        let birrd = Birrd::new(4).unwrap();
        let mut local = LocalRoutes::new();
        let first = cache.lookup(&birrd, &request(4, 2, 0), &mut local).unwrap();
        // Evict it from the shared map…
        let mut other = LocalRoutes::new();
        cache.lookup(&birrd, &request(4, 2, 1), &mut other).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // …the held Arc (and the warm L1 copy) still run fine.
        let mut inputs = vec![None; 4];
        inputs[0] = Some(5i64);
        inputs[1] = Some(7);
        let mut outputs = vec![None; 4];
        first.run(&inputs, &mut outputs).unwrap();
        assert_eq!(outputs[0], Some(12), "reduction of lanes 0..2 into bank 0");
        let again = cache.lookup(&birrd, &request(4, 2, 0), &mut local).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "L1 copy survives eviction");
    }
}
