//! The FEATHER accelerator: controller + NEST + BIRRD + StaB, with RIR.

use std::collections::BTreeMap;

use feather_arch::tensor::Tensor4;
use feather_arch::workload::{ConvLayer, GemmLayer};
use feather_arch::ArchError;
use feather_birrd::{Birrd, NetworkConfig, ReductionRequest};
use feather_memsim::LayoutView;
use feather_nest::{NestArray, NestTiming};

use crate::config::FeatherConfig;
use crate::mapping::LayerMapping;
use crate::report::LayerRun;
use crate::session::NetworkSession;

/// A FEATHER accelerator instance.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Feather {
    config: FeatherConfig,
}

impl Feather {
    /// Creates an accelerator with the given hardware configuration and the
    /// default TSMC-28 energy model.
    pub fn new(config: FeatherConfig) -> Self {
        Feather { config }
    }

    /// The hardware configuration.
    pub fn config(&self) -> FeatherConfig {
        self.config
    }

    /// Executes one convolution layer functionally under the given mapping.
    ///
    /// Input activations are assumed to sit in the active StaB half in
    /// `mapping.iact_layout`; output activations are written to the other half
    /// in `mapping.oact_layout` during BIRRD reduction (RIR).
    ///
    /// This is a one-layer [`NetworkSession`]: the same staging, tile loop and
    /// accounting as the multi-layer pipeline, with the single layer paying
    /// both the iAct staging and the oAct drain DRAM traffic.
    ///
    /// # Errors
    /// Returns an error if the mapping is invalid for the layer/hardware, the
    /// operand shapes are wrong, or BIRRD cannot route a required
    /// reduction-reorder pattern.
    pub fn execute_conv(
        &mut self,
        layer: &ConvLayer,
        mapping: &LayerMapping,
        iacts: &Tensor4<i8>,
        weights: &Tensor4<i8>,
    ) -> Result<LayerRun, ArchError> {
        let session =
            NetworkSession::from_mappings(self.config, vec![(layer.clone(), mapping.clone())])?;
        let run = session.run(iacts, std::slice::from_ref(weights))?;
        let report = run
            .report
            .layers
            .into_iter()
            .next()
            .expect("one-layer session produces one report")
            .report;
        Ok(LayerRun {
            oacts: run.oacts,
            report,
        })
    }

    /// Executes a GEMM by lowering it to a 1×1 convolution (`C = K`,
    /// `Q = N`): `A` provides the weights, `B` provides the activations.
    ///
    /// # Errors
    /// Same failure modes as [`Feather::execute_conv`].
    pub fn execute_gemm(
        &mut self,
        layer: &GemmLayer,
        a: &Tensor4<i8>,
        b: &Tensor4<i8>,
        mapping: &LayerMapping,
    ) -> Result<LayerRun, ArchError> {
        layer.validate()?;
        if a.shape() != [1, 1, layer.m, layer.k] {
            return Err(ArchError::ShapeMismatch(format!(
                "A shape {:?}, expected {:?}",
                a.shape(),
                [1, 1, layer.m, layer.k]
            )));
        }
        if b.shape() != [1, 1, layer.k, layer.n] {
            return Err(ArchError::ShapeMismatch(format!(
                "B shape {:?}, expected {:?}",
                b.shape(),
                [1, 1, layer.k, layer.n]
            )));
        }
        let conv = layer.as_conv();
        // iActs (1, K, 1, N) from B; weights (M, K, 1, 1) from A.
        let iacts = Tensor4::from_fn([1, layer.k, 1, layer.n], |_, k, _, n| b.get(0, 0, k, n));
        let weights = Tensor4::from_fn([layer.m, layer.k, 1, 1], |m, k, _, _| a.get(0, 0, m, k));
        self.execute_conv(&conv, mapping, &iacts, &weights)
    }
}

/// Checks the weight tensor shape against the layer description.
pub(crate) fn check_weight_shape(
    layer: &ConvLayer,
    weights: &Tensor4<i8>,
) -> Result<(), ArchError> {
    let expected = if layer.is_depthwise() {
        [layer.c, 1, layer.r, layer.s]
    } else {
        [layer.m, layer.c, layer.r, layer.s]
    };
    if weights.shape() != expected {
        return Err(ArchError::ShapeMismatch(format!(
            "weights shape {:?}, expected {:?}",
            weights.shape(),
            expected
        )));
    }
    Ok(())
}

/// Raw counters produced by one pass of the inner tile loop.
pub(crate) struct CoreRun {
    /// Compute cycles (tile timings + serialized BIRRD passes), excluding
    /// bank-conflict stalls — the caller charges those from the buffer stats.
    pub cycles: u64,
    /// Number of BIRRD passes (row fires that produced live outputs).
    pub birrd_passes: u64,
    /// Number of adder activations inside BIRRD.
    pub birrd_adds: u64,
    /// Useful MACs performed.
    pub macs: u64,
}

/// The inner tile loop shared by the single-layer entry point and the
/// network-level pipeline executor: weight-stationary tiling over `(M, C)`,
/// Phase-1 local temporal reduction in NEST, Phase-2 row fires through BIRRD
/// with Reorder-in-Reduction into the output view.
///
/// `iact` is the active StaB half (the layer's inputs, already staged in
/// `mapping.iact_layout`); `oact` is the shadow half the reduced outputs land
/// in, addressed by `mapping.oact_layout`. `route_cache` memoizes BIRRD
/// configurations per reduction-reorder request — the controller replays the
/// same handful of patterns for every output pixel, and routing is
/// deterministic per request. `expose_first_weight_load` charges the cold
/// weight load of the first tile; a pipelined layer whose weights were
/// prefetched during the previous layer passes `false`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_conv_core(
    config: &FeatherConfig,
    layer: &ConvLayer,
    mapping: &LayerMapping,
    weights: &Tensor4<i8>,
    iact: &mut LayoutView<'_, i32>,
    oact: &mut LayoutView<'_, i32>,
    route_cache: &mut BTreeMap<ReductionRequest, NetworkConfig>,
    expose_first_weight_load: bool,
) -> Result<CoreRun, ArchError> {
    let rows = config.rows;
    let cols = config.cols;
    let p_total = layer.output_height();
    let q_total = layer.output_width();
    // Depthwise layers collapse the channel reduction: each output channel
    // consumes only its own input channel.
    let depthwise = layer.is_depthwise();
    let c_cols = if depthwise { 1 } else { mapping.c_cols };
    let q_cols = mapping.q_cols.min(cols / c_cols).max(1);
    let m_rows = mapping.m_rows;
    let m_tiles = layer.m.div_ceil(m_rows);
    let c_tiles = if depthwise {
        1
    } else {
        layer.c.div_ceil(c_cols)
    };
    let q_tiles = q_total.div_ceil(q_cols);

    let mut nest = NestArray::new(rows, cols);
    let birrd = Birrd::new(cols).map_err(|e| ArchError::InvalidDataflow(e.to_string()))?;
    let timing = NestTiming::new(rows, cols, birrd.latency_cycles());

    let mut cycles: u64 = 0;
    let mut birrd_passes: u64 = 0;
    let mut birrd_adds: u64 = 0;
    let rs = layer.r * layer.s;
    let mut first_tile = expose_first_weight_load;

    for wt_m in 0..m_tiles {
        for wt_c in 0..c_tiles {
            // ---- Weight load (ping/pong hidden unless first tile) ----
            for m_lane in 0..m_rows {
                let m = wt_m * m_rows + m_lane;
                for q_lane in 0..q_cols {
                    for c_lane in 0..c_cols {
                        let col = q_lane * c_cols + c_lane;
                        let c = if depthwise { m } else { wt_c * c_cols + c_lane };
                        let mut w_vec = vec![0i8; rs];
                        if m < layer.m && c < layer.c {
                            for r in 0..layer.r {
                                for s in 0..layer.s {
                                    w_vec[r * layer.s + s] = if depthwise {
                                        weights.get(c, 0, r, s)
                                    } else {
                                        weights.get(m, c, r, s)
                                    };
                                }
                            }
                        }
                        nest.load_weights(m_lane, col, &w_vec);
                    }
                }
            }
            nest.swap_all_weights();

            let mut fires_this_tile: u64 = 0;
            for n in 0..layer.n {
                for p in 0..p_total {
                    for qt in 0..q_tiles {
                        // ---- Phase 1: local temporal reduction ----
                        for rs_step in 0..rs {
                            let r_i = rs_step / layer.s;
                            let s_i = rs_step % layer.s;
                            iact.begin_cycle();
                            for q_lane in 0..q_cols {
                                let q = qt * q_cols + q_lane;
                                if q >= q_total {
                                    continue;
                                }
                                for c_lane in 0..c_cols {
                                    let col = q_lane * c_cols + c_lane;
                                    let h_raw = p * layer.stride + r_i;
                                    let w_raw = q * layer.stride + s_i;
                                    if h_raw < layer.padding || w_raw < layer.padding {
                                        continue;
                                    }
                                    let h = h_raw - layer.padding;
                                    let w = w_raw - layer.padding;
                                    if h >= layer.h || w >= layer.w {
                                        continue;
                                    }
                                    for m_lane in 0..m_rows {
                                        let m = wt_m * m_rows + m_lane;
                                        if m >= layer.m {
                                            continue;
                                        }
                                        let c = if depthwise { m } else { wt_c * c_cols + c_lane };
                                        if c >= layer.c {
                                            continue;
                                        }
                                        let coord = iact_coord(n, c, h, w);
                                        // Non-depthwise: the same iAct is
                                        // shared by every row, read once.
                                        let value = if depthwise || m_lane == 0 {
                                            iact.read_coord(&coord).unwrap_or(0)
                                        } else {
                                            iact.peek_coord(&coord).unwrap_or(0)
                                        };
                                        nest.mac(m_lane, col, value as i8, rs_step);
                                    }
                                }
                            }
                            iact.flush_cycle();
                        }

                        // ---- Phase 2: row fires through BIRRD (RIR) ----
                        for m_lane in 0..m_rows {
                            let m = wt_m * m_rows + m_lane;
                            let mapped: Vec<bool> = (0..cols)
                                .map(|col| {
                                    let q_lane = col / c_cols;
                                    let c_lane = col % c_cols;
                                    let q = qt * q_cols + q_lane;
                                    let c = if depthwise { m } else { wt_c * c_cols + c_lane };
                                    q_lane < q_cols && q < q_total && m < layer.m && c < layer.c
                                })
                                .collect();
                            let fire = nest.fire_row(m_lane, &mapped);
                            fires_this_tile += 1;
                            if m >= layer.m {
                                continue;
                            }
                            // Build the reduction groups: one per q_lane,
                            // destination = the StaB bank the oAct lands in
                            // under the next layer's layout.
                            let mut groups: Vec<(Vec<usize>, usize, Coord)> = Vec::new();
                            for q_lane in 0..q_cols {
                                let q = qt * q_cols + q_lane;
                                if q >= q_total {
                                    continue;
                                }
                                let members: Vec<usize> = (0..c_cols)
                                    .map(|c_lane| q_lane * c_cols + c_lane)
                                    .filter(|&col| mapped[col])
                                    .collect();
                                if members.is_empty() {
                                    continue;
                                }
                                let coord = oact_coord(n, m, p, q);
                                let loc = oact.location(&coord);
                                let bank = loc.offset % cols;
                                groups.push((members, bank, coord));
                            }
                            // Split into batches with unique destination
                            // banks (a concordant mapping needs one batch).
                            while !groups.is_empty() {
                                let mut batch: Vec<(Vec<usize>, usize, Coord)> = Vec::new();
                                let mut used = std::collections::BTreeSet::new();
                                let mut rest = Vec::new();
                                for g in groups {
                                    if used.insert(g.1) {
                                        batch.push(g);
                                    } else {
                                        rest.push(g);
                                    }
                                }
                                groups = rest;
                                let request = ReductionRequest::from_groups(
                                    cols,
                                    &batch
                                        .iter()
                                        .map(|(m, d, _)| (m.clone(), *d))
                                        .collect::<Vec<_>>(),
                                )
                                .map_err(|e| ArchError::InvalidDataflow(e.to_string()))?;
                                let config = match route_cache.get(&request) {
                                    Some(hit) => hit.clone(),
                                    None => {
                                        let routed = birrd.route(&request).map_err(|e| {
                                            ArchError::InvalidDataflow(e.to_string())
                                        })?;
                                        route_cache.insert(request.clone(), routed.clone());
                                        routed
                                    }
                                };
                                let inputs: Vec<Option<i64>> = (0..cols)
                                    .map(|col| {
                                        if batch.iter().any(|(mem, _, _)| mem.contains(&col)) {
                                            fire.values[col].map(|v| v as i64)
                                        } else {
                                            None
                                        }
                                    })
                                    .collect();
                                let outputs = birrd
                                    .evaluate(&config, &inputs)
                                    .expect("routed config matches network");
                                birrd_passes += 1;
                                birrd_adds += config.adder_activations() as u64;
                                oact.begin_cycle();
                                for (_, bank, coord) in &batch {
                                    let value = outputs[*bank].unwrap_or(0) as i32;
                                    // In-situ accumulation in the output
                                    // buffer across channel tiles.
                                    let prev = oact.peek_coord(coord).unwrap_or(0);
                                    oact.write_coord(coord, prev + value);
                                }
                                oact.flush_cycle();
                                if !groups.is_empty() {
                                    // An extra BIRRD pass serializes the fire.
                                    cycles += 1;
                                }
                            }
                        }
                    }
                }
            }

            let tile_timing = timing.tile(rs, fires_this_tile, rs, first_tile);
            cycles += tile_timing.total();
            first_tile = false;
        }
    }

    Ok(CoreRun {
        cycles,
        birrd_passes,
        birrd_adds,
        macs: nest.total_macs(),
    })
}

type Coord = BTreeMap<feather_arch::Dim, usize>;

/// `(N, C, H, W)` coordinate map for an iAct element.
pub(crate) fn iact_coord(n: usize, c: usize, h: usize, w: usize) -> Coord {
    use feather_arch::Dim;
    [(Dim::N, n), (Dim::C, c), (Dim::H, h), (Dim::W, w)]
        .into_iter()
        .collect()
}

/// `(N, M, P, Q)` coordinate map for an oAct element.
pub(crate) fn oact_coord(n: usize, m: usize, p: usize, q: usize) -> Coord {
    use feather_arch::Dim;
    [(Dim::N, n), (Dim::M, m), (Dim::P, p), (Dim::Q, q)]
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use feather_arch::tensor::{conv2d_reference, gemm_reference};

    fn check_conv(layer: ConvLayer, cfg: FeatherConfig, iact_layout: &str, oact_layout: &str) {
        let iacts = Tensor4::random([layer.n, layer.c, layer.h, layer.w], 11);
        let wshape = if layer.is_depthwise() {
            [layer.c, 1, layer.r, layer.s]
        } else {
            [layer.m, layer.c, layer.r, layer.s]
        };
        let weights = Tensor4::random(wshape, 12);
        let golden = conv2d_reference(&layer, &iacts, &weights).unwrap();
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, iact_layout, oact_layout);
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert_eq!(run.oacts, golden, "functional mismatch for {layer}");
        assert!(run.report.cycles > 0);
        assert!(run.report.macs > 0);
    }

    #[test]
    fn conv_matches_reference_4x4() {
        check_conv(
            ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn conv_matches_reference_with_stride() {
        check_conv(
            ConvLayer::new(1, 4, 8, 8, 8, 3, 3)
                .with_stride(2)
                .with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C8",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_channel_tiling() {
        // C = 16 > 8 columns: two channel tiles accumulate in the output buffer.
        check_conv(
            ConvLayer::new(1, 4, 16, 5, 5, 3, 3).with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C8",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_small_channels_q_parallel() {
        // C = 2 < columns: the remaining columns carry Q parallelism, and the
        // per-fire outputs scatter to multiple banks (RIR reordering).
        check_conv(
            ConvLayer::new(1, 8, 2, 6, 6, 3, 3).with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C2",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_1x1_kernel() {
        check_conv(
            ConvLayer::new(1, 8, 8, 4, 4, 1, 1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn conv_matches_reference_multi_batch() {
        // N = 3: the tile loop reuses the staged weights across the batch.
        check_conv(
            ConvLayer::new(3, 4, 4, 5, 5, 3, 3).with_padding(1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn depthwise_conv_matches_reference() {
        check_conv(
            ConvLayer::new(1, 8, 8, 6, 6, 3, 3)
                .with_padding(1)
                .depthwise(),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn layout_switch_is_free_of_conflicts() {
        // Channel-last iActs, row-major oActs (the Fig. 11 switch): no read
        // conflicts and no serialized BIRRD passes.
        let layer = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let iacts = Tensor4::random([1, 4, 6, 6], 3);
        let weights = Tensor4::random([4, 4, 3, 3], 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert_eq!(run.report.stall_cycles, 0);
        assert_eq!(
            run.oacts,
            conv2d_reference(&layer, &iacts, &weights).unwrap()
        );
    }

    #[test]
    fn gemm_matches_reference() {
        let layer = GemmLayer::new(8, 8, 4);
        let a = Tensor4::random([1, 1, 8, 8], 5);
        let b = Tensor4::random([1, 1, 8, 4], 6);
        let golden = gemm_reference(&layer, &a, &b).unwrap();
        let cfg = FeatherConfig::new(8, 8);
        let conv = layer.as_conv();
        let mapping = LayerMapping::weight_stationary(&conv, &cfg, "HWC_C8", "MPQ_Q8");
        let mut acc = Feather::new(cfg);
        let run = acc.execute_gemm(&layer, &a, &b, &mapping).unwrap();
        for m in 0..8 {
            for n in 0..4 {
                assert_eq!(run.oacts.get(0, m, 0, n), golden.get(0, 0, m, n));
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let layer = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let bad_iacts = Tensor4::random([1, 5, 6, 6], 0);
        let weights = Tensor4::random([4, 4, 3, 3], 0);
        assert!(acc
            .execute_conv(&layer, &mapping, &bad_iacts, &weights)
            .is_err());
    }

    #[test]
    fn utilization_reported_in_unit_range() {
        let layer = ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let iacts = Tensor4::random([1, 8, 6, 6], 3);
        let weights = Tensor4::random([8, 8, 3, 3], 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert!(run.report.utilization > 0.0 && run.report.utilization <= 1.0);
        assert!(run.report.energy.total_pj() > 0.0);
        assert!(run.report.birrd_passes > 0);
        // The single-layer path pays the full DRAM round trip.
        assert!(run.report.dram_iact_bytes > 0);
        assert!(run.report.dram_weight_bytes > 0);
        assert!(run.report.dram_oact_bytes > 0);
    }
}
