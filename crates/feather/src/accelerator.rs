//! The FEATHER accelerator: controller + NEST + BIRRD + StaB, with RIR.

use feather_arch::tensor::Tensor4;
use feather_arch::workload::{ConvLayer, GemmLayer};
use feather_arch::ArchError;

use crate::config::FeatherConfig;
use crate::mapping::LayerMapping;
use crate::report::LayerRun;
use crate::session::NetworkSession;

/// A FEATHER accelerator instance.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Feather {
    config: FeatherConfig,
    /// Compiled BIRRD route programs, persisted across `execute_*` calls —
    /// successive layers on one accelerator replay the same reduce-reorder
    /// patterns.
    route_cache: std::sync::Arc<crate::core::RouteCache>,
}

impl Feather {
    /// Creates an accelerator with the given hardware configuration and the
    /// default TSMC-28 energy model.
    pub fn new(config: FeatherConfig) -> Self {
        Feather {
            config,
            route_cache: std::sync::Arc::new(crate::core::RouteCache::new()),
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> FeatherConfig {
        self.config
    }

    /// Executes one convolution layer functionally under the given mapping.
    ///
    /// Input activations are assumed to sit in the active StaB half in
    /// `mapping.iact_layout`; output activations are written to the other half
    /// in `mapping.oact_layout` during BIRRD reduction (RIR).
    ///
    /// This is a one-layer [`NetworkSession`]: the same staging, tile loop and
    /// accounting as the multi-layer pipeline, with the single layer paying
    /// both the iAct staging and the oAct drain DRAM traffic.
    ///
    /// # Errors
    /// Returns an error if the mapping is invalid for the layer/hardware, the
    /// operand shapes are wrong, or BIRRD cannot route a required
    /// reduction-reorder pattern.
    pub fn execute_conv(
        &mut self,
        layer: &ConvLayer,
        mapping: &LayerMapping,
        iacts: &Tensor4<i8>,
        weights: &Tensor4<i8>,
    ) -> Result<LayerRun, ArchError> {
        let mut session =
            NetworkSession::from_mappings(self.config, vec![(layer.clone(), mapping.clone())])?;
        session.share_route_cache(self.route_cache.clone());
        let run = session.run(iacts, std::slice::from_ref(weights))?;
        let report = run
            .report
            .layers
            .into_iter()
            .next()
            .expect("one-layer session produces one report")
            .report;
        Ok(LayerRun {
            oacts: run.oacts,
            report,
        })
    }

    /// Executes a GEMM by lowering it to a 1×1 convolution (`C = K`,
    /// `Q = N`): `A` provides the weights, `B` provides the activations.
    ///
    /// # Errors
    /// Same failure modes as [`Feather::execute_conv`].
    pub fn execute_gemm(
        &mut self,
        layer: &GemmLayer,
        a: &Tensor4<i8>,
        b: &Tensor4<i8>,
        mapping: &LayerMapping,
    ) -> Result<LayerRun, ArchError> {
        layer.validate()?;
        if a.shape() != [1, 1, layer.m, layer.k] {
            return Err(ArchError::ShapeMismatch(format!(
                "A shape {:?}, expected {:?}",
                a.shape(),
                [1, 1, layer.m, layer.k]
            )));
        }
        if b.shape() != [1, 1, layer.k, layer.n] {
            return Err(ArchError::ShapeMismatch(format!(
                "B shape {:?}, expected {:?}",
                b.shape(),
                [1, 1, layer.k, layer.n]
            )));
        }
        let conv = layer.as_conv();
        // iActs (1, K, 1, N) from B; weights (M, K, 1, 1) from A.
        let iacts = Tensor4::from_fn([1, layer.k, 1, layer.n], |_, k, _, n| b.get(0, 0, k, n));
        let weights = Tensor4::from_fn([layer.m, layer.k, 1, 1], |m, k, _, _| a.get(0, 0, m, k));
        self.execute_conv(&conv, mapping, &iacts, &weights)
    }
}

/// Checks the weight tensor shape against the layer description.
pub(crate) fn check_weight_shape(
    layer: &ConvLayer,
    weights: &Tensor4<i8>,
) -> Result<(), ArchError> {
    let expected = if layer.is_depthwise() {
        [layer.c, 1, layer.r, layer.s]
    } else {
        [layer.m, layer.c, layer.r, layer.s]
    };
    if weights.shape() != expected {
        return Err(ArchError::ShapeMismatch(format!(
            "weights shape {:?}, expected {:?}",
            weights.shape(),
            expected
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use feather_arch::tensor::{conv2d_reference, gemm_reference};

    fn check_conv(layer: ConvLayer, cfg: FeatherConfig, iact_layout: &str, oact_layout: &str) {
        let iacts = Tensor4::random([layer.n, layer.c, layer.h, layer.w], 11);
        let wshape = if layer.is_depthwise() {
            [layer.c, 1, layer.r, layer.s]
        } else {
            [layer.m, layer.c, layer.r, layer.s]
        };
        let weights = Tensor4::random(wshape, 12);
        let golden = conv2d_reference(&layer, &iacts, &weights).unwrap();
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, iact_layout, oact_layout);
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert_eq!(run.oacts, golden, "functional mismatch for {layer}");
        assert!(run.report.cycles > 0);
        assert!(run.report.macs > 0);
    }

    #[test]
    fn conv_matches_reference_4x4() {
        check_conv(
            ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn conv_matches_reference_with_stride() {
        check_conv(
            ConvLayer::new(1, 4, 8, 8, 8, 3, 3)
                .with_stride(2)
                .with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C8",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_channel_tiling() {
        // C = 16 > 8 columns: two channel tiles accumulate in the output buffer.
        check_conv(
            ConvLayer::new(1, 4, 16, 5, 5, 3, 3).with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C8",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_small_channels_q_parallel() {
        // C = 2 < columns: the remaining columns carry Q parallelism, and the
        // per-fire outputs scatter to multiple banks (RIR reordering).
        check_conv(
            ConvLayer::new(1, 8, 2, 6, 6, 3, 3).with_padding(1),
            FeatherConfig::new(4, 8),
            "HWC_C2",
            "MPQ_Q8",
        );
    }

    #[test]
    fn conv_matches_reference_1x1_kernel() {
        check_conv(
            ConvLayer::new(1, 8, 8, 4, 4, 1, 1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn conv_matches_reference_multi_batch() {
        // N = 3: the tile loop reuses the staged weights across the batch.
        check_conv(
            ConvLayer::new(3, 4, 4, 5, 5, 3, 3).with_padding(1),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn depthwise_conv_matches_reference() {
        check_conv(
            ConvLayer::new(1, 8, 8, 6, 6, 3, 3)
                .with_padding(1)
                .depthwise(),
            FeatherConfig::new(4, 4),
            "HWC_C4",
            "MPQ_Q4",
        );
    }

    #[test]
    fn layout_switch_is_free_of_conflicts() {
        // Channel-last iActs, row-major oActs (the Fig. 11 switch): no read
        // conflicts and no serialized BIRRD passes.
        let layer = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let iacts = Tensor4::random([1, 4, 6, 6], 3);
        let weights = Tensor4::random([4, 4, 3, 3], 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert_eq!(run.report.stall_cycles, 0);
        assert_eq!(
            run.oacts,
            conv2d_reference(&layer, &iacts, &weights).unwrap()
        );
    }

    #[test]
    fn gemm_matches_reference() {
        let layer = GemmLayer::new(8, 8, 4);
        let a = Tensor4::random([1, 1, 8, 8], 5);
        let b = Tensor4::random([1, 1, 8, 4], 6);
        let golden = gemm_reference(&layer, &a, &b).unwrap();
        let cfg = FeatherConfig::new(8, 8);
        let conv = layer.as_conv();
        let mapping = LayerMapping::weight_stationary(&conv, &cfg, "HWC_C8", "MPQ_Q8");
        let mut acc = Feather::new(cfg);
        let run = acc.execute_gemm(&layer, &a, &b, &mapping).unwrap();
        for m in 0..8 {
            for n in 0..4 {
                assert_eq!(run.oacts.get(0, m, 0, n), golden.get(0, 0, m, n));
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let layer = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let bad_iacts = Tensor4::random([1, 5, 6, 6], 0);
        let weights = Tensor4::random([4, 4, 3, 3], 0);
        assert!(acc
            .execute_conv(&layer, &mapping, &bad_iacts, &weights)
            .is_err());
    }

    #[test]
    fn utilization_reported_in_unit_range() {
        let layer = ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 4);
        let iacts = Tensor4::random([1, 8, 6, 6], 3);
        let weights = Tensor4::random([8, 8, 3, 3], 4);
        let mapping = LayerMapping::weight_stationary(&layer, &cfg, "HWC_C4", "MPQ_Q4");
        let mut acc = Feather::new(cfg);
        let run = acc
            .execute_conv(&layer, &mapping, &iacts, &weights)
            .unwrap();
        assert!(run.report.utilization > 0.0 && run.report.utilization <= 1.0);
        assert!(run.report.energy.total_pj() > 0.0);
        assert!(run.report.birrd_passes > 0);
        // The single-layer path pays the full DRAM round trip.
        assert!(run.report.dram_iact_bytes > 0);
        assert!(run.report.dram_weight_bytes > 0);
        assert!(run.report.dram_oact_bytes > 0);
    }
}
