//! Whole-graph DAG execution: residual branches and joins over the pipelined
//! ping/pong StaB.
//!
//! [`NetworkSession`] runs one *linear* chain of layers back-to-back. Real
//! models are DAGs: ResNet's shortcut tensors branch off, survive several
//! layers, and rejoin through an element-wise add. [`GraphSession`] closes
//! that gap:
//!
//! 1. The [`Graph`] is partitioned into linear [`GraphSegment`]s (branch
//!    fan-outs and joins always fall on segment boundaries).
//! 2. Each segment runs through the existing ping/pong [`NetworkSession`]
//!    core — intermediate activations inside a segment never leave the chip.
//! 3. A tensor still needed after the pipeline moves on (a shortcut) is
//!    parked in a [`ScratchRegion`] with its own traffic accounting.
//! 4. At a join, the quantized INT8 main-path and shortcut tensors are added
//!    with saturation ([`saturating_add_i8`]) before the result is staged
//!    into the consumer segment in its preferred layout.
//!
//! DRAM accounting is graph-level: only the graph input is staged from DRAM
//! and only the graph output drains back; every other boundary lives in the
//! StaB handoff or the scratch region. [`run_graph_reference`] provides the
//! naive golden executor (reference convolutions, explicit materialization of
//! every tensor) that [`GraphSession::run`] is bit-identical to.
//!
//! # Example
//!
//! ```
//! use feather::{FeatherConfig, GraphSession};
//! use feather::graph_session::run_graph_reference;
//! use feather_arch::graph::Graph;
//! use feather_arch::tensor::Tensor4;
//! use feather_arch::workload::ConvLayer;
//!
//! // conv → (identity ‖ conv) → add → conv: one residual join.
//! let mut g = Graph::new("toy", [1, 4, 6, 6]);
//! let trunk = g
//!     .conv(g.input(), ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1).with_name("stem"))
//!     .unwrap();
//! let branch = g
//!     .conv(trunk, ConvLayer::new(1, 4, 4, 6, 6, 1, 1).with_name("branch"))
//!     .unwrap();
//! let joined = g.add(trunk, branch, "join").unwrap();
//! g.conv(joined, ConvLayer::new(1, 4, 4, 6, 6, 1, 1).with_name("head")).unwrap();
//!
//! let session = GraphSession::auto(FeatherConfig::new(4, 4), &g).unwrap();
//! let iacts = Tensor4::random([1, 4, 6, 6], 1);
//! let weights = g.random_weights(2);
//! let run = session.run(&iacts, &weights).unwrap();
//!
//! let (shift, zero) = session.quantization();
//! let golden = run_graph_reference(&g, &iacts, &weights, shift, zero).unwrap();
//! assert_eq!(run.oacts, golden);
//! assert_eq!(run.report.joins.len(), 1);
//! ```

use std::collections::BTreeMap;

use feather_arch::dataflow::Dataflow;
use feather_arch::energy::EnergyModel;
use feather_arch::graph::{Graph, GraphSegment, Node, NodeId, NodeOp, TensorId};
use feather_arch::layout::Layout;
use feather_arch::tensor::{conv2d_reference, quantize_to_i8, saturating_add_i8, Tensor4};
use feather_arch::workload::ConvLayer;
use feather_arch::ArchError;
use feather_memsim::ScratchRegion;

use crate::config::FeatherConfig;
use crate::mapping::LayerMapping;
use crate::report::{GraphReport, GraphRun, JoinSummary, NetworkReport, SegmentSummary};
use crate::session::{NetworkSession, DEFAULT_QUANT_SHIFT};

/// Per-node scheduling callback used by the session builders: maps a
/// conv-like node (and its execution convolution) to the `(dataflow, iAct
/// layout)` it should run with (`None` dataflow → the default
/// weight-stationary mapping).
type SchedulePick<'a> =
    &'a dyn Fn(&Node, &ConvLayer) -> Result<(Option<Dataflow>, Layout), ArchError>;

/// One scheduled step of a graph execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Run segment `i` of the segment list through its [`NetworkSession`].
    Segment(usize),
    /// Perform the residual add of the given node.
    Join(NodeId),
}

/// A compiled segment: its graph span plus the pipeline session executing it.
#[derive(Debug, Clone)]
pub(crate) struct SegmentExec {
    pub(crate) segment: GraphSegment,
    pub(crate) session: NetworkSession,
}

/// A DAG executor over FEATHER's pipelined StaB. See the
/// [module documentation](self) for the architectural story and an example.
#[derive(Debug, Clone)]
pub struct GraphSession {
    config: FeatherConfig,
    graph: Graph,
    pub(crate) segments: Vec<SegmentExec>,
    pub(crate) plan: Vec<Step>,
    /// Batch size every tensor's `N` extent is replaced with at run time
    /// (the graph's authored batch until [`GraphSession::with_batch`]).
    batch: usize,
    quant_shift: u32,
    quant_zero: i8,
    pub(crate) energy_model: EnergyModel,
}

impl GraphSession {
    /// Builds a session with the default weight-stationary mapping and a
    /// channels-last `HWC_C*` iAct layout per node (capped at the array
    /// width). The go-to constructor when no co-searched plan is available.
    ///
    /// # Errors
    /// Returns an error if the graph is invalid or a segment cannot be
    /// compiled into a pipeline session.
    pub fn auto(config: FeatherConfig, graph: &Graph) -> Result<Self, ArchError> {
        Self::build(config, graph, &|_, conv| {
            Ok((None, auto_layout(conv, &config)))
        })
    }

    /// Builds a session from per-node `(dataflow, iAct layout)` schedules —
    /// the shape `layoutloop`'s graph planner produces. Nodes absent from the
    /// map (or whose scheduled layout is wider than the array allows) fall
    /// back to the [`GraphSession::auto`] defaults.
    ///
    /// # Errors
    /// Returns an error if the graph is invalid, a scheduled dataflow cannot
    /// be projected onto FEATHER's controller, or a segment cannot be
    /// compiled.
    pub fn from_schedules(
        config: FeatherConfig,
        graph: &Graph,
        schedules: &BTreeMap<NodeId, (Dataflow, Layout)>,
    ) -> Result<Self, ArchError> {
        Self::build(config, graph, &|node, conv| match schedules.get(&node.id) {
            Some((df, layout)) if layout.line_size() <= config.cols => {
                Ok((Some(df.clone()), layout.clone()))
            }
            _ => Ok((None, auto_layout(conv, &config))),
        })
    }

    fn build(
        config: FeatherConfig,
        graph: &Graph,
        pick: SchedulePick<'_>,
    ) -> Result<Self, ArchError> {
        graph.validate()?;
        if graph.is_empty() {
            return Err(ArchError::InvalidWorkload(
                "a graph session needs at least one node".to_string(),
            ));
        }
        let segments = graph.segments();

        // Resolve every conv-like node's (dataflow, iAct layout) first: oAct
        // layouts at segment boundaries are derived from *consumer* iAct
        // layouts, possibly across a join.
        let mut schedules: BTreeMap<NodeId, (Option<Dataflow>, Layout)> = BTreeMap::new();
        for seg in &segments {
            for &id in &seg.nodes {
                let node = graph.node(id);
                let conv = node
                    .execution_conv()
                    .expect("segments hold conv-like nodes");
                schedules.insert(id, pick(node, &conv)?);
            }
        }

        // One compiled-route memo for the whole graph: segments share the
        // array width, so their reduce-reorder patterns overlap heavily.
        let route_cache = std::sync::Arc::new(crate::core::RouteCache::new());
        let mut compiled = Vec::with_capacity(segments.len());
        for seg in &segments {
            let mut steps = Vec::with_capacity(seg.nodes.len());
            for (i, &id) in seg.nodes.iter().enumerate() {
                let node = graph.node(id);
                let conv = node
                    .execution_conv()
                    .expect("segments hold conv-like nodes");
                let (dataflow, iact_layout) = schedules[&id].clone();
                let oact_layout = match seg.nodes.get(i + 1) {
                    Some(next) => schedules[next].1.as_producer_oact_layout(),
                    None => boundary_oact_layout(graph, seg.output, &schedules, &conv, &config),
                };
                let mapping = match dataflow {
                    Some(df) => {
                        LayerMapping::from_dataflow(&conv, &config, &df, iact_layout, oact_layout)?
                    }
                    None => LayerMapping::weight_stationary_layouts(
                        &conv,
                        &config,
                        iact_layout,
                        oact_layout,
                    ),
                };
                steps.push((conv, mapping));
            }
            let mut session = NetworkSession::from_mappings(config, steps)?;
            session.share_route_cache(route_cache.clone());
            compiled.push(SegmentExec {
                segment: seg.clone(),
                session,
            });
        }

        // The execution plan: walk nodes topologically, entering a segment at
        // its head (its whole chain runs back-to-back) and a join at its add.
        let mut plan = Vec::new();
        let head_of: BTreeMap<NodeId, usize> = compiled
            .iter()
            .enumerate()
            .map(|(i, s)| (s.segment.nodes[0], i))
            .collect();
        for node in graph.nodes() {
            if node.op.is_add() {
                plan.push(Step::Join(node.id));
            } else if let Some(&si) = head_of.get(&node.id) {
                plan.push(Step::Segment(si));
            }
        }

        Ok(GraphSession {
            config,
            batch: graph.tensor_shape(graph.input())[0],
            graph: graph.clone(),
            segments: compiled,
            plan,
            quant_shift: DEFAULT_QUANT_SHIFT,
            quant_zero: 0,
            energy_model: EnergyModel::tsmc28(),
        })
    }

    /// Overrides the boundary quantization parameters (builder style).
    pub fn with_quantization(mut self, shift: u32, zero_point: i8) -> Self {
        self.quant_shift = shift;
        self.quant_zero = zero_point;
        for seg in &mut self.segments {
            seg.session = seg.session.clone().with_quantization(shift, zero_point);
        }
        self
    }

    /// The boundary quantization parameters `(shift, zero_point)`.
    pub fn quantization(&self) -> (u32, i8) {
        (self.quant_shift, self.quant_zero)
    }

    /// Pins the executor's worker-thread count for every segment (builder
    /// style) — see [`NetworkSession::with_threads`]. `1` forces the serial
    /// path; the parallel run is bit-identical either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        for seg in &mut self.segments {
            seg.session.set_threads(threads);
        }
        self
    }

    /// Returns a copy of the session that executes `n` samples per run: every
    /// segment layer's batch extent becomes `n`
    /// ([`NetworkSession::with_batch`]), shortcut scratch parking and the
    /// residual joins follow the batched shapes, and each tile's staged
    /// weights serve all `n` samples. The copy shares this session's
    /// compiled-route cache, and its output is bit-identical to `n` solo
    /// runs of the per-sample session (sample `i` of the batch equals the
    /// solo run of sample `i`).
    ///
    /// # Errors
    /// Returns an error if `n` is zero; segment re-validation errors do not
    /// occur in practice (batching preserves chainability).
    pub fn with_batch(&self, n: usize) -> Result<Self, ArchError> {
        if n == 0 {
            return Err(ArchError::InvalidWorkload(
                "batch size must be at least 1".to_string(),
            ));
        }
        let mut session = self.clone();
        session.batch = n;
        for seg in &mut session.segments {
            seg.session = seg.session.with_batch(n)?;
        }
        Ok(session)
    }

    /// Samples per [`GraphSession::run`] call.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Counters of the compiled-route cache shared by every segment of this
    /// session (and by batched copies made with [`GraphSession::with_batch`]).
    pub fn route_cache_stats(&self) -> crate::core::RouteCacheStats {
        self.segments[0].session.route_cache_stats()
    }

    /// A tensor's shape at run time: the authored shape with the `N` extent
    /// replaced by the session's batch size.
    fn batched_shape(&self, t: TensorId) -> [usize; 4] {
        let mut shape = self.graph.tensor_shape(t);
        shape[0] = self.batch;
        shape
    }

    /// The hardware configuration.
    pub fn config(&self) -> FeatherConfig {
        self.config
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of linear segments the graph was partitioned into.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Lowers this session into a flat, replayable [`crate::Program`]: all
    /// layouts, location tables, BIRRD routes and scratch moves resolved
    /// ahead of time, so [`crate::ProgramSession::run`] dispatches the op
    /// stream linearly with zero per-layer planning. Replay is bit-identical
    /// to [`GraphSession::run`] — outputs, cycles and access statistics alike.
    ///
    /// # Errors
    /// Returns an error if a route cannot be compiled — the same conditions
    /// under which [`GraphSession::run`] itself would fail.
    pub fn compile(&self) -> Result<crate::Program, ArchError> {
        crate::program::compile(self)
    }

    /// Like [`GraphSession::compile`], but backed by the on-disk artifact
    /// cache under `FEATHER_CACHE_DIR/programs/` (next to the co-search
    /// cache): a matching artifact is loaded instead of recompiled, and a
    /// fresh compile is saved back. Returns the program together with where
    /// it came from.
    ///
    /// # Errors
    /// Same conditions as [`GraphSession::compile`]; artifact I/O failures
    /// degrade to a recompile, never to an error. A corrupt or stale
    /// artifact (checksum failure, truncation, old format, fingerprint
    /// mismatch) is quarantined aside as `<name>.bad` and recompiled.
    pub fn compile_cached(&self) -> Result<(crate::Program, crate::ArtifactStatus), ArchError> {
        crate::program::compile_cached(self)
    }

    /// A stable fingerprint of everything that determines this session's
    /// compiled program: hardware config, batch, quantization, the schedule
    /// (mappings and layouts) and the graph structure. Keys the on-disk
    /// program artifacts.
    pub fn fingerprint(&self) -> u64 {
        crate::program::session_fingerprint(self)
    }

    /// Executes the whole DAG. `weights` holds one tensor per node that
    /// needs one ([`Node::weight_shape`]); pooling lowerings synthesize their
    /// own window weights.
    ///
    /// # Errors
    /// Returns an error on missing weights, operand shape mismatches, or an
    /// unroutable BIRRD pattern.
    pub fn run(
        &self,
        iacts: &Tensor4<i8>,
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<GraphRun, ArchError> {
        self.check_input(iacts)?;
        let graph = &self.graph;
        let mut state = RunState::new(graph, iacts.clone(), self.config.cols, self.batch);
        let mut segments = Vec::with_capacity(self.segments.len());
        let mut joins = Vec::new();
        let mut final_acc: Option<Tensor4<i32>> = None;

        for step in &self.plan {
            match *step {
                Step::Segment(si) => {
                    let exec = &self.segments[si];
                    let seg = &exec.segment;
                    let (input, input_from_scratch) = state.take(seg.input)?;
                    let layer_weights = self.segment_weights(seg, weights)?;
                    let run = exec.session.run(&input, &layer_weights)?;
                    let is_graph_output = seg.output == graph.output();
                    segments.push(SegmentSummary {
                        nodes: seg
                            .nodes
                            .iter()
                            .map(|&id| graph.node(id).name.clone())
                            .collect(),
                        report: self.adjust_report(seg, run.report, is_graph_output),
                        input_from_scratch,
                    });
                    if is_graph_output {
                        final_acc = Some(run.oacts.clone());
                    }
                    state.publish(
                        seg.output,
                        quantize_to_i8(&run.oacts, self.quant_shift, self.quant_zero),
                    );
                }
                Step::Join(id) => {
                    let node = graph.node(id);
                    let (a, _) = state.take(node.inputs[0])?;
                    let (b, _) = state.take(node.inputs[1])?;
                    let (sum, saturated) = saturating_add_i8(&a, &b)?;
                    joins.push(JoinSummary {
                        name: node.name.clone(),
                        elements: sum.len() as u64,
                        saturated,
                    });
                    if node.output == graph.output() {
                        final_acc = Some(widen(&sum));
                    }
                    state.publish(node.output, sum);
                }
            }
        }

        Ok(GraphRun {
            oacts: final_acc.expect("the plan visits the output node"),
            report: GraphReport {
                segments,
                joins,
                scratch: *state.scratch.stats(),
                scratch_peak_elems: state.scratch.peak_occupancy() as u64,
            },
        })
    }

    /// Runs the same graph layer-at-a-time: every segment through the
    /// sequential [`NetworkSession::run_layer_at_a_time`] baseline (each layer
    /// staging and draining through DRAM), joins applied on the materialized
    /// tensors. Bit-identical to [`GraphSession::run`]; this is the golden
    /// baseline the equivalence suite and the `graph_resnet` bench compare
    /// against.
    ///
    /// # Errors
    /// Same conditions as [`GraphSession::run`].
    pub fn run_layer_at_a_time(
        &self,
        iacts: &Tensor4<i8>,
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<Tensor4<i32>, ArchError> {
        self.check_input(iacts)?;
        let graph = &self.graph;
        let mut values: BTreeMap<TensorId, Tensor4<i8>> = BTreeMap::new();
        values.insert(graph.input(), iacts.clone());
        let mut final_acc: Option<Tensor4<i32>> = None;
        for step in &self.plan {
            match *step {
                Step::Segment(si) => {
                    let exec = &self.segments[si];
                    let seg = &exec.segment;
                    let input = values
                        .get(&seg.input)
                        .expect("plan order materializes inputs first");
                    let layer_weights = self.segment_weights(seg, weights)?;
                    let acc = exec.session.run_layer_at_a_time(input, &layer_weights)?;
                    values.insert(
                        seg.output,
                        quantize_to_i8(&acc, self.quant_shift, self.quant_zero),
                    );
                    if seg.output == graph.output() {
                        final_acc = Some(acc);
                    }
                }
                Step::Join(id) => {
                    let node = graph.node(id);
                    let (sum, _) =
                        saturating_add_i8(&values[&node.inputs[0]], &values[&node.inputs[1]])?;
                    if node.output == graph.output() {
                        final_acc = Some(widen(&sum));
                    }
                    values.insert(node.output, sum);
                }
            }
        }
        Ok(final_acc.expect("the plan visits the output node"))
    }

    fn check_input(&self, iacts: &Tensor4<i8>) -> Result<(), ArchError> {
        let expected = self.batched_shape(self.graph.input());
        if iacts.shape() != expected {
            return Err(ArchError::ShapeMismatch(format!(
                "graph input shape {:?}, expected {:?}",
                iacts.shape(),
                expected
            )));
        }
        Ok(())
    }

    /// Collects (or synthesizes) the per-layer weight tensors of a segment.
    fn segment_weights(
        &self,
        seg: &GraphSegment,
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<Vec<Tensor4<i8>>, ArchError> {
        seg.nodes
            .iter()
            .map(|&id| {
                let node = self.graph.node(id);
                match &node.op {
                    NodeOp::PoolAsConv(conv) => Ok(pool_window_weights(conv)),
                    _ => weights.get(&id).cloned().ok_or_else(|| {
                        ArchError::InvalidWorkload(format!(
                            "no weight tensor supplied for node `{}`",
                            node.name
                        ))
                    }),
                }
            })
            .collect()
    }

    /// Rewrites a segment's [`NetworkReport`] for graph-level DRAM
    /// accounting: interior boundary tensors stay on chip (StaB handoff or
    /// scratch region), and pooling lowerings carry no weight traffic — their
    /// window constants are synthesized, not streamed.
    fn adjust_report(
        &self,
        seg: &GraphSegment,
        mut report: NetworkReport,
        is_graph_output: bool,
    ) -> NetworkReport {
        let is_graph_input = seg.input == self.graph.input();
        let mut dirty: Vec<usize> = Vec::new();
        if !is_graph_input {
            report.layers[0].report.dram_iact_bytes = 0;
            dirty.push(0);
        }
        if !is_graph_output {
            let last = report.layers.len() - 1;
            report.layers[last].report.dram_oact_bytes = 0;
            dirty.push(last);
        }
        for (i, &id) in seg.nodes.iter().enumerate() {
            if matches!(self.graph.node(id).op, NodeOp::PoolAsConv(_)) {
                report.layers[i].report.dram_weight_bytes = 0;
                dirty.push(i);
            }
        }
        for i in dirty {
            let layer = &mut report.layers[i].report;
            layer.energy.dram_pj = self.energy_model.dram_pj(layer.dram_bytes());
        }
        report
    }
}

/// The default channels-last iAct layout for a layer, capped at the array
/// width.
fn auto_layout(conv: &ConvLayer, config: &FeatherConfig) -> Layout {
    format!("HWC_C{}", conv.c.min(config.cols))
        .parse()
        .expect("generated layout is valid")
}

/// The oAct layout for a segment's last layer: the downstream consumer's
/// preferred iAct layout (looking through joins), or a natural `MPQ_Q*`
/// drain layout for the graph output.
fn boundary_oact_layout(
    graph: &Graph,
    output: TensorId,
    schedules: &BTreeMap<NodeId, (Option<Dataflow>, Layout)>,
    conv: &ConvLayer,
    config: &FeatherConfig,
) -> Layout {
    let mut frontier = vec![output];
    while let Some(t) = frontier.pop() {
        let consumers = graph.consumers(t);
        for &c in &consumers {
            let node = graph.node(c);
            if node.is_conv_like() {
                if let Some((_, layout)) = schedules.get(&c) {
                    return layout.as_producer_oact_layout();
                }
            }
        }
        for &c in &consumers {
            let node = graph.node(c);
            if node.op.is_add() {
                frontier.push(node.output);
            }
        }
    }
    format!("MPQ_Q{}", conv.output_width().min(config.cols))
        .parse()
        .expect("generated layout is valid")
}

/// All-ones (depthwise) or channel-identity (standard) window weights for a
/// pooling-as-convolution lowering: each output pixel becomes the plain window
/// sum, whose `1/w²` average scaling folds into the boundary quantization.
pub(crate) fn pool_window_weights(conv: &ConvLayer) -> Tensor4<i8> {
    if conv.is_depthwise() {
        Tensor4::from_fn([conv.c, 1, conv.r, conv.s], |_, _, _, _| 1)
    } else {
        Tensor4::from_fn([conv.m, conv.c, conv.r, conv.s], |m, c, _, _| {
            i8::from(m == c)
        })
    }
}

/// Widens an INT8 tensor to the INT32 accumulator domain (for graphs whose
/// output node is a join).
pub(crate) fn widen(t: &Tensor4<i8>) -> Tensor4<i32> {
    let [a, b, c, d] = t.shape();
    Tensor4::from_fn([a, b, c, d], |i, j, k, l| t.get(i, j, k, l) as i32)
}

/// Tracks where every live tensor currently resides during a graph run: the
/// single *fresh* tensor sits in the StaB (the last pipeline output), and
/// everything still needed beyond that is parked in the shortcut scratch
/// region.
struct RunState<'g> {
    graph: &'g Graph,
    scratch: ScratchRegion<i8>,
    /// The session's batch size — tensors reconstructed from the scratch
    /// region get the authored shape with this `N` extent.
    batch: usize,
    /// The tensor most recently produced, still in the StaB active half.
    fresh: Option<(TensorId, Tensor4<i8>)>,
    /// Consumers not yet served, per tensor.
    remaining: BTreeMap<TensorId, usize>,
}

impl<'g> RunState<'g> {
    fn new(graph: &'g Graph, input: Tensor4<i8>, line_size: usize, batch: usize) -> Self {
        let mut remaining = BTreeMap::new();
        let mut count = |t: TensorId| {
            remaining.insert(t, graph.consumers(t).len());
        };
        count(graph.input());
        for node in graph.nodes() {
            count(node.output);
        }
        RunState {
            graph,
            scratch: ScratchRegion::new(line_size.max(1)),
            batch,
            fresh: Some((graph.input(), input)),
            remaining,
        }
    }

    /// Hands a tensor to its next consumer. Returns the data plus whether it
    /// came out of the scratch region (vs. the fresh StaB handoff). The last
    /// consumer takes ownership (no copy); earlier consumers get a clone.
    fn take(&mut self, t: TensorId) -> Result<(Tensor4<i8>, bool), ArchError> {
        let uses = self
            .remaining
            .get_mut(&t)
            .ok_or_else(|| ArchError::InvalidWorkload(format!("unknown tensor {t}")))?;
        *uses = uses.saturating_sub(1);
        let uses_left = *uses;
        if let Some((fresh_t, data)) = &self.fresh {
            if *fresh_t == t {
                return Ok(if uses_left == 0 {
                    (self.fresh.take().expect("just matched").1, false)
                } else {
                    (data.clone(), false)
                });
            }
        }
        let key = t.to_string();
        let missing = || {
            ArchError::InvalidWorkload(format!(
                "tensor {t} consumed before being produced or after being freed"
            ))
        };
        // `fetch` counts the read; the final consumer then moves the parked
        // allocation out instead of copying it.
        let data = if uses_left == 0 {
            self.scratch.fetch(&key).ok_or_else(missing)?;
            self.scratch.release(&key).expect("fetched above")
        } else {
            self.scratch.fetch(&key).ok_or_else(missing)?.to_vec()
        };
        let mut shape = self.graph.tensor_shape(t);
        shape[0] = self.batch;
        Ok((Tensor4::from_vec(shape, data)?, true))
    }

    /// Installs a newly produced tensor as the fresh StaB resident. The
    /// previous fresh tensor is parked in the scratch region if it still has
    /// consumers waiting (it is a shortcut crossing this production).
    fn publish(&mut self, t: TensorId, data: Tensor4<i8>) {
        if let Some((old_t, old_data)) = self.fresh.take() {
            if self.remaining.get(&old_t).copied().unwrap_or(0) > 0 {
                self.scratch
                    .park(old_t.to_string(), old_data.as_slice().to_vec());
            }
        }
        self.fresh = Some((t, data));
    }
}

/// Executes a graph naively with the golden reference kernels: every tensor
/// materialized, every conv through [`conv2d_reference`], every intermediate
/// quantized to INT8, every join a saturating add — exactly the semantics
/// [`GraphSession::run`] implements on the simulated hardware. Returns the
/// output node's INT32 accumulators (or the widened join result).
///
/// # Errors
/// Returns an error on missing weights or shape mismatches.
pub fn run_graph_reference(
    graph: &Graph,
    iacts: &Tensor4<i8>,
    weights: &BTreeMap<NodeId, Tensor4<i8>>,
    quant_shift: u32,
    quant_zero: i8,
) -> Result<Tensor4<i32>, ArchError> {
    let mut values: BTreeMap<TensorId, Tensor4<i8>> = BTreeMap::new();
    values.insert(graph.input(), iacts.clone());
    let mut final_acc: Option<Tensor4<i32>> = None;
    for node in graph.nodes() {
        if let Some(conv) = node.execution_conv() {
            let w = match &node.op {
                NodeOp::PoolAsConv(c) => pool_window_weights(c),
                _ => weights.get(&node.id).cloned().ok_or_else(|| {
                    ArchError::InvalidWorkload(format!(
                        "no weight tensor supplied for node `{}`",
                        node.name
                    ))
                })?,
            };
            let input = &values[&node.inputs[0]];
            let acc = conv2d_reference(&conv, input, &w)?;
            values.insert(node.output, quantize_to_i8(&acc, quant_shift, quant_zero));
            if node.output == graph.output() {
                final_acc = Some(acc);
            }
        } else {
            let (sum, _) = saturating_add_i8(&values[&node.inputs[0]], &values[&node.inputs[1]])?;
            if node.output == graph.output() {
                final_acc = Some(widen(&sum));
            }
            values.insert(node.output, sum);
        }
    }
    final_acc
        .ok_or_else(|| ArchError::InvalidWorkload(format!("graph `{}` has no nodes", graph.name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// conv → (identity ‖ proj conv) → add → conv, plus a second identity
    /// join — two joins, one fan-out of each flavor.
    fn residual_graph() -> Graph {
        let mut g = Graph::new("residual", [1, 4, 6, 6]);
        let stem = g
            .conv(
                g.input(),
                ConvLayer::new(1, 4, 4, 6, 6, 3, 3)
                    .with_padding(1)
                    .with_name("stem"),
            )
            .unwrap();
        let main = g
            .conv(
                stem,
                ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("b0_main"),
            )
            .unwrap();
        let proj = g
            .conv(
                stem,
                ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("b0_proj"),
            )
            .unwrap();
        let j0 = g.add(main, proj, "b0_add").unwrap();
        let main1 = g
            .conv(
                j0,
                ConvLayer::new(1, 8, 8, 6, 6, 3, 3)
                    .with_padding(1)
                    .with_name("b1_main"),
            )
            .unwrap();
        let j1 = g.add(main1, j0, "b1_add").unwrap();
        g.conv(j1, ConvLayer::new(1, 4, 8, 6, 6, 1, 1).with_name("head"))
            .unwrap();
        g
    }

    fn session_and_operands() -> (
        GraphSession,
        Graph,
        Tensor4<i8>,
        BTreeMap<NodeId, Tensor4<i8>>,
    ) {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let iacts = Tensor4::random([1, 4, 6, 6], 11);
        let weights = g.random_weights(12);
        (session, g, iacts, weights)
    }

    #[test]
    fn graph_run_matches_reference_and_layer_at_a_time() {
        let (session, g, iacts, weights) = session_and_operands();
        let run = session.run(&iacts, &weights).unwrap();
        let (shift, zero) = session.quantization();
        let golden = run_graph_reference(&g, &iacts, &weights, shift, zero).unwrap();
        assert_eq!(run.oacts, golden);
        let sequential = session.run_layer_at_a_time(&iacts, &weights).unwrap();
        assert_eq!(run.oacts, sequential);
    }

    #[test]
    fn joins_and_segments_are_reported() {
        let (session, _, iacts, weights) = session_and_operands();
        let run = session.run(&iacts, &weights).unwrap();
        // Segments: [stem], [b0_main], [b0_proj], [b1_main], [head].
        assert_eq!(run.report.segments.len(), 5);
        assert_eq!(run.report.joins.len(), 2);
        for join in &run.report.joins {
            assert_eq!(join.elements, 8 * 6 * 6);
        }
        // Shortcuts moved through the scratch region.
        assert!(run.report.scratch.element_writes > 0);
        assert!(run.report.scratch.element_reads > 0);
        assert!(run.report.scratch_peak_elems >= 8 * 6 * 6);
        assert!(run.report.shortcut_bytes() > 0);
        // One StaB swap per executed layer.
        assert_eq!(run.report.stab_swaps(), 5);
    }

    #[test]
    fn graph_dram_accounting_only_charges_the_graph_edges() {
        let (session, _, iacts, weights) = session_and_operands();
        let run = session.run(&iacts, &weights).unwrap();
        let report = &run.report;
        let layers: Vec<_> = report.layers().collect();
        // Only the first layer stages iActs from DRAM and only the last
        // drains oActs; everything between stayed on chip.
        for (i, layer) in layers.iter().enumerate() {
            if i == 0 {
                assert!(layer.report.dram_iact_bytes > 0, "{}", layer.name);
            } else {
                assert_eq!(layer.report.dram_iact_bytes, 0, "{}", layer.name);
            }
            if i + 1 == layers.len() {
                assert!(layer.report.dram_oact_bytes > 0, "{}", layer.name);
            } else {
                assert_eq!(layer.report.dram_oact_bytes, 0, "{}", layer.name);
            }
        }
        assert!(report.dram_activation_bytes() < report.layer_at_a_time_activation_bytes());
        assert!(report.dram_activation_savings() > 0.0);
        let pes = session.config().num_pes();
        let u = report.utilization(pes);
        assert!(u > 0.0 && u <= 1.0);
        assert!(report.total_energy_pj() > 0.0);
    }

    #[test]
    fn graph_ending_in_a_join_returns_the_widened_sum() {
        let mut g = Graph::new("join_out", [1, 4, 4, 4]);
        let a = g
            .conv(
                g.input(),
                ConvLayer::new(1, 4, 4, 4, 4, 1, 1).with_name("a"),
            )
            .unwrap();
        let b = g
            .conv(a, ConvLayer::new(1, 4, 4, 4, 4, 1, 1).with_name("b"))
            .unwrap();
        g.add(a, b, "out_add").unwrap();
        let session = GraphSession::auto(FeatherConfig::new(4, 4), &g).unwrap();
        let iacts = Tensor4::random([1, 4, 4, 4], 3);
        let weights = g.random_weights(4);
        let run = session.run(&iacts, &weights).unwrap();
        let golden = run_graph_reference(&g, &iacts, &weights, DEFAULT_QUANT_SHIFT, 0).unwrap();
        assert_eq!(run.oacts, golden);
        // The widened sum stays inside the INT8 domain.
        assert!(run
            .oacts
            .as_slice()
            .iter()
            .all(|&v| v >= i8::MIN as i32 && v <= i8::MAX as i32));
    }

    /// Slices sample `i` out of a batched `[N, c, h, w]` INT8 tensor.
    fn sample_of(t: &Tensor4<i8>, i: usize) -> Tensor4<i8> {
        let [_, c, h, w] = t.shape();
        Tensor4::from_fn([1, c, h, w], |_, cc, hh, ww| t.get(i, cc, hh, ww))
    }

    /// Asserts sample `i` of a batched INT32 output equals a solo output.
    fn assert_sample_matches(batched: &Tensor4<i32>, i: usize, solo: &Tensor4<i32>, what: &str) {
        let [_, m, p, q] = solo.shape();
        for mm in 0..m {
            for pp in 0..p {
                for qq in 0..q {
                    assert_eq!(
                        batched.get(i, mm, pp, qq),
                        solo.get(0, mm, pp, qq),
                        "{what}: sample {i} diverged at ({mm},{pp},{qq})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_graph_run_matches_per_sample_solo_runs() {
        let (session, _, _, weights) = session_and_operands();
        let n = 3;
        let batched = session.with_batch(n).unwrap();
        assert_eq!(batched.batch(), n);
        let iacts = Tensor4::random([n, 4, 6, 6], 77);
        let run = batched.run(&iacts, &weights).unwrap();
        // Residual joins stay exact: every sample matches its solo run.
        for i in 0..n {
            let solo = session.run(&sample_of(&iacts, i), &weights).unwrap();
            assert_sample_matches(&run.oacts, i, &solo.oacts, "residual graph");
        }
        // The batched session is also self-consistent with its own baseline.
        let sequential = batched.run_layer_at_a_time(&iacts, &weights).unwrap();
        assert_eq!(run.oacts, sequential);
        // Per-tile weight staging is shared across the batch.
        let solo0 = session.run(&sample_of(&iacts, 0), &weights).unwrap();
        assert!(
            run.report.total_cycles() < n as u64 * solo0.report.total_cycles(),
            "batching must amortize weight staging"
        );
    }

    #[test]
    fn batched_pool_gemm_tail_matches_solo() {
        // The ResNet tail shape: conv → global avgpool → FC (gemm lowering).
        let mut g = Graph::new("pooled_batched", [1, 4, 8, 8]);
        let c = g
            .conv(
                g.input(),
                ConvLayer::new(1, 8, 4, 8, 8, 3, 3)
                    .with_padding(1)
                    .with_name("conv"),
            )
            .unwrap();
        let p = g.avgpool_as_conv(c, 8, 1, 0, "gap").unwrap();
        g.gemm(
            p,
            feather_arch::workload::GemmLayer::new(1, 8, 6).with_name("fc"),
        )
        .unwrap();
        let session = GraphSession::auto(FeatherConfig::new(4, 4), &g).unwrap();
        let n = 2;
        let batched = session.with_batch(n).unwrap();
        let iacts = Tensor4::random([n, 4, 8, 8], 55);
        let run = batched.run(&iacts, &weights_for(&g)).unwrap();
        for i in 0..n {
            let solo = session
                .run(&sample_of(&iacts, i), &weights_for(&g))
                .unwrap();
            assert_sample_matches(&run.oacts, i, &solo.oacts, "pool+gemm tail");
        }
    }

    fn weights_for(g: &Graph) -> BTreeMap<NodeId, Tensor4<i8>> {
        g.random_weights(66)
    }

    #[test]
    fn zero_batch_rejected_and_wrong_batch_shape_rejected() {
        let (session, _, _, weights) = session_and_operands();
        assert!(session.with_batch(0).is_err());
        let batched = session.with_batch(2).unwrap();
        // A solo-shaped input no longer fits the batched session.
        assert!(batched
            .run(&Tensor4::random([1, 4, 6, 6], 1), &weights)
            .is_err());
    }

    #[test]
    fn missing_weights_are_reported_by_node_name() {
        let (session, _, iacts, mut weights) = session_and_operands();
        let missing = *weights.keys().nth(2).unwrap();
        weights.remove(&missing);
        let err = session.run(&iacts, &weights).unwrap_err();
        assert!(err.to_string().contains("no weight tensor"), "{err}");
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let (session, _, _, weights) = session_and_operands();
        let bad = Tensor4::random([1, 4, 5, 5], 1);
        assert!(session.run(&bad, &weights).is_err());
    }

    #[test]
    fn pool_lowerings_carry_no_weight_traffic() {
        let mut g = Graph::new("pooled", [1, 4, 8, 8]);
        let c = g
            .conv(
                g.input(),
                ConvLayer::new(1, 8, 4, 8, 8, 3, 3)
                    .with_padding(1)
                    .with_name("conv"),
            )
            .unwrap();
        let p = g.avgpool_as_conv(c, 8, 1, 0, "gap").unwrap();
        g.gemm(
            p,
            feather_arch::workload::GemmLayer::new(1, 8, 6).with_name("fc"),
        )
        .unwrap();
        let session = GraphSession::auto(FeatherConfig::new(4, 4), &g).unwrap();
        let iacts = Tensor4::random([1, 4, 8, 8], 5);
        let weights = g.random_weights(6);
        let run = session.run(&iacts, &weights).unwrap();
        let (shift, zero) = session.quantization();
        let golden = run_graph_reference(&g, &iacts, &weights, shift, zero).unwrap();
        assert_eq!(run.oacts, golden);
        let pool_layer = run
            .report
            .layers()
            .find(|l| l.name == "gap")
            .expect("pool layer reported");
        assert_eq!(pool_layer.report.dram_weight_bytes, 0);
        // The conv and FC do stream weights.
        assert!(run
            .report
            .layers()
            .filter(|l| l.name != "gap")
            .all(|l| l.report.dram_weight_bytes > 0));
    }
}
