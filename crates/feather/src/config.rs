//! Static configuration of a FEATHER instance.

use serde::{Deserialize, Serialize};

/// Hardware parameters of one FEATHER instance (Fig. 7 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatherConfig {
    /// Number of PE rows (`AH`).
    pub rows: usize,
    /// Number of PE columns (`AW`) — also the BIRRD width and the number of
    /// StaB banks. Must be a power of two.
    pub cols: usize,
    /// Depth (lines per bank) of each StaB half.
    pub stab_lines: usize,
    /// Depth of the streaming buffer.
    pub strb_lines: usize,
}

impl FeatherConfig {
    /// Creates a configuration with default buffer depths sized generously
    /// enough for the evaluation layers.
    ///
    /// # Panics
    /// Panics if `cols` is not a power of two (BIRRD requirement) or either
    /// dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        assert!(
            cols.is_power_of_two(),
            "AW (columns / BIRRD width) must be a power of two, got {cols}"
        );
        FeatherConfig {
            rows,
            cols,
            stab_lines: 65_536,
            strb_lines: 16_384,
        }
    }

    /// Overrides the StaB depth (builder style).
    pub fn with_stab_lines(mut self, lines: usize) -> Self {
        self.stab_lines = lines;
        self
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// The 16×16 configuration used for most of the paper's evaluation.
    pub fn paper_16x16() -> Self {
        FeatherConfig::new(16, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config() {
        let c = FeatherConfig::paper_16x16();
        assert_eq!(c.num_pes(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_cols_rejected() {
        FeatherConfig::new(4, 6);
    }

    #[test]
    fn builder_overrides() {
        let c = FeatherConfig::new(4, 4).with_stab_lines(128);
        assert_eq!(c.stab_lines, 128);
    }
}
