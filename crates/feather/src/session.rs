//! Network-level pipeline execution: back-to-back layers through the
//! ping/pong StaB.
//!
//! FEATHER's headline capability (§III-C, §V of the paper) is *low-cost
//! on-chip dataflow switching*: while layer `i` reads its iActs from the
//! active StaB half, BIRRD reduces its oActs into the shadow half **already
//! arranged in layer `i + 1`'s preferred iAct layout** (Reorder-in-Reduction).
//! A ping/pong swap at the layer boundary then makes those outputs the next
//! layer's inputs — no DRAM round trip, no reorder pass, no re-staging.
//!
//! [`NetworkSession`] is that executor: it takes an ordered chain of
//! convolution layers with per-layer mappings, stages the first layer's iActs
//! once, runs every layer through the shared tile-loop core, quantizes
//! accumulators at each boundary (the architecturally-free quantization module
//! of §III-C.4) and swaps the StaB halves. The result carries per-layer
//! [`RunReport`]s with *pipelined* DRAM accounting plus network totals.
//!
//! # Example
//!
//! ```
//! use feather::{FeatherConfig, NetworkSession};
//! use feather_arch::tensor::Tensor4;
//! use feather_arch::workload::ConvLayer;
//!
//! // Two chained layers: 4→4 channels at 6×6, then a 1×1 on the result.
//! let l1 = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1).with_name("l1");
//! let l2 = ConvLayer::new(1, 4, 4, 6, 6, 1, 1).with_name("l2");
//! let cfg = FeatherConfig::new(4, 4);
//! let session = NetworkSession::weight_stationary(
//!     cfg,
//!     &[l1.clone(), l2.clone()],
//!     &["HWC_C4", "HWC_C4"],
//!     "MPQ_Q4",
//! )
//! .unwrap();
//!
//! let iacts = Tensor4::random([1, 4, 6, 6], 1);
//! let weights = [Tensor4::random([4, 4, 3, 3], 2), Tensor4::random([4, 4, 1, 1], 3)];
//! let run = session.run(&iacts, &weights).unwrap();
//!
//! // One swap per layer (the last one publishes the outputs), and the
//! // intermediate activations never touched DRAM.
//! assert_eq!(run.report.stab_swaps, 2);
//! assert!(run.report.dram_activation_bytes() < run.report.layer_at_a_time_activation_bytes());
//! ```

use std::sync::Arc;

use feather_arch::dataflow::Dataflow;
use feather_arch::dims::Operand;
use feather_arch::energy::{EnergyBreakdown, EnergyModel};
use feather_arch::layout::Layout;
use feather_arch::tensor::{quantize_to_i8, quantize_value, Tensor4};
use feather_arch::workload::ConvLayer;
use feather_arch::{ArchError, DataType};
use feather_memsim::{AccessStats, Banking, BufferSpec, LayoutView, PingPong};

use crate::accelerator::{check_weight_shape, Feather};
use crate::config::FeatherConfig;
use crate::core::{run_conv_core, CoreRun, LayerExec, RouteCache, RouteCacheStats, RouteExecution};
use crate::mapping::LayerMapping;
use crate::report::{LayerSummary, NetworkReport, NetworkRun, RunReport};

/// Default power-of-two quantization shift applied to the INT32 accumulators
/// at every layer boundary before they become the next layer's INT8 iActs.
pub const DEFAULT_QUANT_SHIFT: u32 = 6;

/// A network-level pipeline executor over FEATHER's ping/pong StaB.
///
/// See the [module documentation](self) for the architectural story and an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct NetworkSession {
    config: FeatherConfig,
    energy_model: EnergyModel,
    steps: Vec<(ConvLayer, LayerMapping)>,
    quant_shift: u32,
    quant_zero: i8,
    /// Explicit executor worker count; `None` auto-sizes per layer (the
    /// `FEATHER_THREADS` environment variable, else all cores, with small
    /// layers staying serial).
    threads: Option<usize>,
    /// Compiled BIRRD route programs, shared across this session's layers,
    /// runs, worker threads — and sibling sessions of a graph.
    route_cache: Arc<RouteCache>,
}

impl NetworkSession {
    /// Creates a session from fully-resolved per-layer mappings.
    ///
    /// # Errors
    /// Returns an error if the chain is empty, a layer or mapping is invalid,
    /// consecutive layers do not chain shape-wise
    /// ([`ConvLayer::chains_into`]), or a layer's oAct layout is not the
    /// producer-side view of the next layer's iAct layout (the RIR boundary
    /// contract, [`Layout::as_producer_oact_layout`]).
    pub fn from_mappings(
        config: FeatherConfig,
        steps: Vec<(ConvLayer, LayerMapping)>,
    ) -> Result<Self, ArchError> {
        if steps.is_empty() {
            return Err(ArchError::InvalidWorkload(
                "a pipeline session needs at least one layer".to_string(),
            ));
        }
        for (layer, mapping) in &steps {
            layer.validate()?;
            mapping.validate(layer, &config)?;
        }
        for (i, pair) in steps.windows(2).enumerate() {
            let (layer, mapping) = &pair[0];
            let (next_layer, next_mapping) = &pair[1];
            if !layer.chains_into(next_layer) {
                return Err(ArchError::InvalidWorkload(format!(
                    "pipeline boundary {i}: `{layer}` does not chain into `{next_layer}` \
                     (output shape must equal the next input shape)"
                )));
            }
            let required = next_mapping.iact_layout.as_producer_oact_layout();
            if mapping.oact_layout != required {
                return Err(ArchError::InvalidDataflow(format!(
                    "pipeline boundary {i}: layer `{layer}` writes oActs as {} but the next \
                     layer reads {} — RIR must target {required}",
                    mapping.oact_layout, next_mapping.iact_layout
                )));
            }
        }
        Ok(NetworkSession {
            config,
            energy_model: EnergyModel::tsmc28(),
            steps,
            quant_shift: DEFAULT_QUANT_SHIFT,
            quant_zero: 0,
            threads: None,
            route_cache: Arc::new(RouteCache::new()),
        })
    }

    /// Convenience constructor: builds the paper's weight-stationary mapping
    /// for every layer, with the given per-layer iAct layouts. Each layer's
    /// oAct layout is derived from the *next* layer's iAct layout (the RIR
    /// boundary contract); the last layer uses `last_oact_layout`.
    ///
    /// # Errors
    /// Same as [`NetworkSession::from_mappings`], plus a shape error if the
    /// layout slice length does not match the layer count.
    ///
    /// # Panics
    /// Panics if a layout string does not parse.
    pub fn weight_stationary(
        config: FeatherConfig,
        layers: &[ConvLayer],
        iact_layouts: &[&str],
        last_oact_layout: &str,
    ) -> Result<Self, ArchError> {
        if layers.len() != iact_layouts.len() {
            return Err(ArchError::ShapeMismatch(format!(
                "{} layers but {} iAct layouts",
                layers.len(),
                iact_layouts.len()
            )));
        }
        let parsed: Vec<Layout> = iact_layouts
            .iter()
            .map(|s| s.parse().expect("iact layout string must be valid"))
            .collect();
        let steps = layers
            .iter()
            .zip(parsed.iter().enumerate())
            .map(|(layer, (i, iact_layout))| {
                let oact_layout = match parsed.get(i + 1) {
                    Some(next) => next.as_producer_oact_layout(),
                    None => last_oact_layout
                        .parse()
                        .expect("oact layout string must be valid"),
                };
                let mapping = LayerMapping::weight_stationary_layouts(
                    layer,
                    &config,
                    iact_layout.clone(),
                    oact_layout,
                );
                (layer.clone(), mapping)
            })
            .collect();
        NetworkSession::from_mappings(config, steps)
    }

    /// Builds a session from a co-searched `(dataflow, iAct layout)` schedule,
    /// e.g. the per-layer result of
    /// `layoutloop::cosearch::plan_network`. oAct layouts are derived from the
    /// successor's iAct layout as in [`NetworkSession::weight_stationary`].
    ///
    /// # Errors
    /// Same as [`NetworkSession::from_mappings`], plus a shape error on a
    /// schedule length mismatch and a dataflow error if a scheduled dataflow
    /// cannot be projected onto FEATHER's `M`-rows × `C·Q`-columns controller.
    pub fn from_schedule(
        config: FeatherConfig,
        layers: &[ConvLayer],
        schedule: &[(Dataflow, Layout)],
        last_oact_layout: Layout,
    ) -> Result<Self, ArchError> {
        if layers.len() != schedule.len() {
            return Err(ArchError::ShapeMismatch(format!(
                "{} layers but {} schedule entries",
                layers.len(),
                schedule.len()
            )));
        }
        let steps = layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let (dataflow, iact_layout) = &schedule[i];
                let oact_layout = match schedule.get(i + 1) {
                    Some((_, next)) => next.as_producer_oact_layout(),
                    None => last_oact_layout.clone(),
                };
                let mapping = LayerMapping::from_dataflow(
                    layer,
                    &config,
                    dataflow,
                    iact_layout.clone(),
                    oact_layout,
                )?;
                Ok((layer.clone(), mapping))
            })
            .collect::<Result<Vec<_>, ArchError>>()?;
        NetworkSession::from_mappings(config, steps)
    }

    /// Overrides the boundary quantization parameters (builder style).
    pub fn with_quantization(mut self, shift: u32, zero_point: i8) -> Self {
        self.quant_shift = shift;
        self.quant_zero = zero_point;
        self
    }

    /// The boundary quantization parameters `(shift, zero_point)` — needed to
    /// reproduce the pipeline with sequential per-layer calls.
    pub fn quantization(&self) -> (u32, i8) {
        (self.quant_shift, self.quant_zero)
    }

    /// Pins the executor's worker-thread count (builder style). `1` forces
    /// the serial path; higher counts shard each layer's `(weight-tile,
    /// batch)` loop across that many `std::thread::scope` workers. The
    /// parallel run is bit-identical to the serial one — outputs, access
    /// statistics and cycle counts alike (enforced by the
    /// `parallel_equivalence` suite).
    ///
    /// Without an explicit pin the executor auto-sizes per layer: the
    /// `FEATHER_THREADS` environment variable if set, otherwise all available
    /// cores, with small layers staying serial to skip the fork overhead.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// In-place form of [`NetworkSession::with_threads`] (no session clone —
    /// how a graph session pins every segment's worker count).
    pub(crate) fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Returns a copy of the session with every layer's batch size replaced:
    /// the same staged weights serve all `n` samples of each tile.
    ///
    /// # Errors
    /// Propagates chain re-validation errors (none in practice — batching
    /// preserves chainability).
    pub fn with_batch(&self, n: usize) -> Result<Self, ArchError> {
        let steps = self
            .steps
            .iter()
            .map(|(layer, mapping)| (layer.clone().with_batch(n), mapping.clone()))
            .collect();
        let mut session = NetworkSession::from_mappings(self.config, steps)?;
        session.quant_shift = self.quant_shift;
        session.quant_zero = self.quant_zero;
        session.threads = self.threads;
        session.route_cache = self.route_cache.clone();
        Ok(session)
    }

    /// Makes this session resolve BIRRD routes through `cache` — how a graph
    /// session shares one compiled-route memo across all its segments.
    pub(crate) fn share_route_cache(&mut self, cache: Arc<RouteCache>) {
        self.route_cache = cache;
    }

    /// The session's shared compiled-route cache — the program compiler
    /// resolves (and warms) routes through it during the collect pass.
    pub(crate) fn route_cache(&self) -> &Arc<RouteCache> {
        &self.route_cache
    }

    /// The pinned executor worker count (`None` = auto-size per layer) — a
    /// compiled program captures it so replay shards identically.
    pub(crate) fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Counters of the session's shared compiled-route cache (hits, misses,
    /// evictions, resident programs). Batched copies made with
    /// [`NetworkSession::with_batch`] share the same cache, so their traffic
    /// shows up here too.
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        self.route_cache.stats()
    }

    /// The resolved `(layer, mapping)` chain, in execution order.
    pub fn steps(&self) -> &[(ConvLayer, LayerMapping)] {
        &self.steps
    }

    /// The hardware configuration.
    pub fn config(&self) -> FeatherConfig {
        self.config
    }

    /// Executes the whole chain back-to-back: stages `iacts` once into the
    /// active StaB half, then for each layer reads from the active half,
    /// BIRRD-reduces into the shadow half in the next layer's layout, and
    /// swaps at the boundary. `weights` holds one tensor per layer.
    ///
    /// # Errors
    /// Returns an error on operand shape mismatches or if BIRRD cannot route
    /// a required reduction-reorder pattern.
    pub fn run(
        &self,
        iacts: &Tensor4<i8>,
        weights: &[Tensor4<i8>],
    ) -> Result<NetworkRun, ArchError> {
        if weights.len() != self.steps.len() {
            return Err(ArchError::ShapeMismatch(format!(
                "{} weight tensors for {} layers",
                weights.len(),
                self.steps.len()
            )));
        }
        let (first_layer, _) = &self.steps[0];
        let expected = [first_layer.n, first_layer.c, first_layer.h, first_layer.w];
        if iacts.shape() != expected {
            return Err(ArchError::ShapeMismatch(format!(
                "iacts shape {:?}, expected {:?}",
                iacts.shape(),
                expected
            )));
        }
        for ((layer, _), w) in self.steps.iter().zip(weights) {
            check_weight_shape(layer, w)?;
        }

        // --- StaB: one ping/pong pair shared by the whole chain -----------
        let mut stab: PingPong<i32> = PingPong::new(self.iact_spec(0));

        // Stage the first layer's iActs (DRAM → StaB bulk DMA; excluded from
        // the compute-cycle accounting by snapshotting the stats below).
        {
            let (active, _) = stab.split_mut();
            let idims = first_layer.iact_dim_sizes();
            let mut view = LayoutView::new(active, &self.steps[0].1.iact_layout, &idims);
            let plan = crate::core::iact_plan(&self.steps[0].1.iact_layout, first_layer);
            iacts.for_each(|coord, v| view.write_at(plan.location(coord), v as i32));
            view.flush_cycle();
        }

        let route_cache = &*self.route_cache;
        let mut summaries: Vec<LayerSummary> = Vec::with_capacity(self.steps.len());
        let num_layers = self.steps.len();

        for (i, layer_weights) in weights.iter().enumerate() {
            let (layer, mapping) = &self.steps[i];
            let idims = layer.iact_dim_sizes();
            let odims = layer.oact_dim_sizes();

            // The shadow half becomes this layer's oAct target; the active
            // half (filled by the DMA or by the previous layer's RIR writes)
            // is re-disciplined for its read role. Geometry is preserved
            // across the boundary by the RIR layout contract.
            stab.shadow().reshape(self.oact_spec(i));
            if i > 0 {
                stab.active().rebank(self.iact_spec(i));
            }
            let iact_base = *stab.active_ref().stats();
            let oact_base = *stab.shadow_ref().stats();

            let core = {
                let exec = LayerExec::new(&self.config, layer, mapping)?;
                let (active, shadow) = stab.split_mut();
                let mut iact_view = LayoutView::new(active, &mapping.iact_layout, &idims);
                let mut oact_view = LayoutView::new(shadow, &mapping.oact_layout, &odims);
                run_conv_core(
                    &exec,
                    layer_weights,
                    &mut iact_view,
                    &mut oact_view,
                    RouteExecution::Cached(route_cache),
                    // Only the very first tile's weight load is exposed: a
                    // pipelined layer's weights prefetch into the NEST shadow
                    // registers while the previous layer drains.
                    i == 0,
                    self.threads,
                )?
            };

            let iact_stats = stab.active_ref().stats().since(&iact_base);
            let oact_stats = stab.shadow_ref().stats().since(&oact_base);
            summaries.push(self.layer_summary(
                layer,
                &core,
                iact_stats,
                oact_stats,
                i == 0,
                i + 1 == num_layers,
            ));

            if i + 1 < num_layers {
                // Boundary: the quantization module rescales the INT32
                // accumulators to INT8 on their way into the StaB (free,
                // §III-C.4) — they are the next layer's iActs.
                let (shift, zero) = (self.quant_shift, self.quant_zero);
                let shadow = stab.shadow();
                let mut view = LayoutView::new(shadow, &mapping.oact_layout, &odims);
                let plan = crate::core::oact_plan(&mapping.oact_layout, layer);
                for_each_oact(layer, |coord| {
                    let loc = plan.location(coord);
                    let acc = view.peek_at(loc).unwrap_or(0);
                    view.poke_at(loc, quantize_value(acc, shift, zero) as i32);
                });
            }
            stab.swap();
        }

        // The final swap left the last layer's (unquantized) accumulators on
        // the active side; drain them to the output tensor.
        let (last_layer, last_mapping) = self.steps.last().expect("session is non-empty");
        let odims = last_layer.oact_dim_sizes();
        let oacts = {
            let (active, _) = stab.split_mut();
            let view = LayoutView::new(active, &last_mapping.oact_layout, &odims);
            let plan = crate::core::oact_plan(&last_mapping.oact_layout, last_layer);
            Tensor4::from_fn(
                [
                    last_layer.n,
                    last_layer.m,
                    last_layer.output_height(),
                    last_layer.output_width(),
                ],
                |n, m, p, q| view.peek_at(plan.location([n, m, p, q])).unwrap_or(0),
            )
        };

        Ok(NetworkRun {
            oacts,
            report: NetworkReport {
                layers: summaries,
                stab_swaps: stab.swaps(),
            },
        })
    }

    /// Runs the same chain layer-at-a-time: each layer through a standalone
    /// [`Feather::execute_conv`] call, with its accumulators quantized and
    /// re-staged as the next layer's iActs between calls — the DRAM round
    /// trip the pipelined [`NetworkSession::run`] avoids. Returns the final
    /// layer's accumulators, which are bit-identical to the pipelined run's;
    /// this is the reference baseline the equivalence suite and the
    /// `pipeline_resnet` bench compare against.
    ///
    /// # Errors
    /// Same conditions as [`NetworkSession::run`].
    pub fn run_layer_at_a_time(
        &self,
        iacts: &Tensor4<i8>,
        weights: &[Tensor4<i8>],
    ) -> Result<Tensor4<i32>, ArchError> {
        if weights.len() != self.steps.len() {
            return Err(ArchError::ShapeMismatch(format!(
                "{} weight tensors for {} layers",
                weights.len(),
                self.steps.len()
            )));
        }
        let mut acc = Feather::new(self.config);
        let mut current = iacts.clone();
        let mut last = None;
        for ((layer, mapping), w) in self.steps.iter().zip(weights) {
            let run = acc.execute_conv(layer, mapping, &current, w)?;
            current = quantize_to_i8(&run.oacts, self.quant_shift, self.quant_zero);
            last = Some(run.oacts);
        }
        Ok(last.expect("session is non-empty"))
    }

    /// Buffer discipline of the active half while layer `i` reads its iActs.
    fn iact_spec(&self, i: usize) -> BufferSpec {
        let (layer, mapping) = &self.steps[i];
        iact_spec(layer, mapping)
    }

    /// Buffer discipline of the shadow half while layer `i` writes its oActs.
    fn oact_spec(&self, i: usize) -> BufferSpec {
        let (layer, mapping) = &self.steps[i];
        oact_spec(layer, mapping)
    }

    /// Assembles one layer's report — see [`layer_summary`].
    fn layer_summary(
        &self,
        layer: &ConvLayer,
        core: &CoreRun,
        iact_stats: AccessStats,
        oact_stats: AccessStats,
        is_first: bool,
        is_last: bool,
    ) -> LayerSummary {
        layer_summary(
            &self.config,
            &self.energy_model,
            layer,
            core,
            iact_stats,
            oact_stats,
            is_first,
            is_last,
        )
    }
}

/// Buffer discipline of the active StaB half while a layer reads its iActs:
/// for read-conflict purposes the StaB behaves like one dual-ported logical
/// bank — reading more than two distinct lines in a cycle stalls. Shared by
/// the interpreted session and the compiled-program replay path.
pub(crate) fn iact_spec(layer: &ConvLayer, mapping: &LayerMapping) -> BufferSpec {
    let lines = mapping
        .iact_layout
        .total_lines(&layer.iact_dim_sizes())
        .max(1);
    BufferSpec::new(
        lines,
        mapping.iact_layout.line_size(),
        1,
        Banking::VerticalBlocked,
    )
    .with_ports(2, 2)
}

/// Buffer discipline of the shadow StaB half while a layer writes its oActs:
/// `AW` horizontal banks, one element column each (§III-C).
pub(crate) fn oact_spec(layer: &ConvLayer, mapping: &LayerMapping) -> BufferSpec {
    let lines = mapping
        .oact_layout
        .total_lines(&layer.oact_dim_sizes())
        .max(1);
    BufferSpec::new(
        lines,
        mapping.oact_layout.line_size(),
        mapping.oact_layout.line_size(),
        Banking::Horizontal,
    )
    .with_ports(2, 2)
}

/// Assembles one layer's report from the core counters and the per-layer
/// buffer statistics, with pipelined DRAM accounting: only the first layer
/// stages iActs from DRAM, only the last drains oActs back. Shared by the
/// interpreted session and the compiled-program replay path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn layer_summary(
    config: &FeatherConfig,
    energy_model: &EnergyModel,
    layer: &ConvLayer,
    core: &CoreRun,
    iact_stats: AccessStats,
    oact_stats: AccessStats,
    is_first: bool,
    is_last: bool,
) -> LayerSummary {
    let dtype = DataType::Int8;
    let staged_iact_bytes = layer.operand_bytes(Operand::IActs, dtype);
    let drained_oact_bytes = layer.operand_bytes(Operand::OActs, dtype);
    let dram_iact_bytes = if is_first { staged_iact_bytes } else { 0 };
    let dram_weight_bytes = layer.operand_bytes(Operand::Weights, dtype);
    let dram_oact_bytes = if is_last { drained_oact_bytes } else { 0 };
    let dram_bytes = dram_iact_bytes + dram_weight_bytes + dram_oact_bytes;

    let stall_cycles = iact_stats.conflict_stall_cycles;
    let cycles = core.cycles + stall_cycles;
    let macs = core.macs;
    let cols = config.cols;

    let energy = EnergyBreakdown {
        compute_pj: macs as f64 * energy_model.mac_pj(dtype),
        register_pj: macs as f64 * 2.0 * energy_model.register_pj_per_byte,
        sram_pj: energy_model.sram_pj(iact_stats.element_reads + oact_stats.element_writes),
        dram_pj: energy_model.dram_pj(dram_bytes),
        noc_pj: (core.birrd_adds + core.birrd_passes * cols as u64) as f64
            * energy_model.reduction_switch_pj,
        leakage_pj: config.num_pes() as f64 * cycles as f64 * energy_model.leakage_pj_per_pe_cycle,
    };
    let utilization = macs as f64 / (cycles.max(1) as f64 * config.num_pes() as f64).max(1.0);

    LayerSummary {
        name: layer.name.clone(),
        report: RunReport {
            cycles,
            stall_cycles,
            macs,
            birrd_passes: core.birrd_passes,
            birrd_adds: core.birrd_adds,
            iact_stats,
            oact_stats,
            dram_iact_bytes,
            dram_weight_bytes,
            dram_oact_bytes,
            utilization: utilization.min(1.0),
            energy,
        },
        standalone_activation_dram_bytes: staged_iact_bytes + drained_oact_bytes,
    }
}

/// Visits every oAct coordinate of a layer in `(N, M, P, Q)` order.
pub(crate) fn for_each_oact(layer: &ConvLayer, mut f: impl FnMut([usize; 4])) {
    for n in 0..layer.n {
        for m in 0..layer.m {
            for p in 0..layer.output_height() {
                for q in 0..layer.output_width() {
                    f([n, m, p, q]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-layer chain with a layout switch at every boundary.
    fn chain() -> (Vec<ConvLayer>, Vec<&'static str>, &'static str) {
        let layers = vec![
            ConvLayer::new(1, 4, 4, 6, 6, 3, 3)
                .with_padding(1)
                .with_name("c0"),
            ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("c1"),
            ConvLayer::new(1, 4, 8, 6, 6, 3, 3)
                .with_padding(1)
                .with_name("c2"),
        ];
        (layers, vec!["HWC_C4", "HWC_C4", "HWC_C4W2"], "MPQ_Q4")
    }

    fn chain_weights() -> Vec<Tensor4<i8>> {
        vec![
            Tensor4::random([4, 4, 3, 3], 21),
            Tensor4::random([8, 4, 1, 1], 22),
            Tensor4::random([4, 8, 3, 3], 23),
        ]
    }

    fn session() -> NetworkSession {
        let (layers, iact_layouts, last) = chain();
        NetworkSession::weight_stationary(FeatherConfig::new(4, 8), &layers, &iact_layouts, last)
            .unwrap()
    }

    #[test]
    fn pipeline_matches_sequential_execution_bit_exactly() {
        let s = session();
        let iacts = Tensor4::random([1, 4, 6, 6], 20);
        let weights = chain_weights();
        let run = s.run(&iacts, &weights).unwrap();
        let golden = s.run_layer_at_a_time(&iacts, &weights).unwrap();
        assert_eq!(run.oacts, golden);
    }

    #[test]
    fn swap_count_equals_layer_count() {
        let s = session();
        let run = s
            .run(&Tensor4::random([1, 4, 6, 6], 20), &chain_weights())
            .unwrap();
        assert_eq!(run.report.stab_swaps, 3);
        assert_eq!(run.report.layers.len(), 3);
    }

    #[test]
    fn pipelined_dram_activation_traffic_is_strictly_lower() {
        let s = session();
        let run = s
            .run(&Tensor4::random([1, 4, 6, 6], 20), &chain_weights())
            .unwrap();
        let report = &run.report;
        assert!(report.dram_activation_bytes() < report.layer_at_a_time_activation_bytes());
        // Intermediate layers pay no activation DRAM traffic at all.
        assert_eq!(report.layers[1].report.dram_iact_bytes, 0);
        assert_eq!(report.layers[1].report.dram_oact_bytes, 0);
        assert_eq!(report.layers[0].report.dram_oact_bytes, 0);
        assert_eq!(report.layers[2].report.dram_iact_bytes, 0);
        assert!(report.dram_activation_savings() > 0.0);
    }

    #[test]
    fn batched_run_reuses_staged_weights() {
        let s = session();
        let weights = chain_weights();
        let batched_iacts = Tensor4::random([2, 4, 6, 6], 30);
        let batched = s.with_batch(2).unwrap();
        let run2 = batched.run(&batched_iacts, &weights).unwrap();

        // Per-sample equivalence against two single-batch runs.
        for sample in 0..2 {
            let single_iacts = Tensor4::from_fn([1, 4, 6, 6], |_, c, h, w| {
                batched_iacts.get(sample, c, h, w)
            });
            let run1 = s.run(&single_iacts, &weights).unwrap();
            let [_, m, p, q] = run1.oacts.shape();
            for mm in 0..m {
                for pp in 0..p {
                    for qq in 0..q {
                        assert_eq!(
                            run2.oacts.get(sample, mm, pp, qq),
                            run1.oacts.get(0, mm, pp, qq),
                            "sample {sample} diverged at ({mm},{pp},{qq})"
                        );
                    }
                }
            }
        }

        // Weights are staged once per tile and reused across the batch, so
        // doubling the batch must cost less than double the cycles.
        let single_iacts =
            Tensor4::from_fn([1, 4, 6, 6], |_, c, h, w| batched_iacts.get(0, c, h, w));
        let run1 = s.run(&single_iacts, &weights).unwrap();
        assert!(run2.report.total_cycles() < 2 * run1.report.total_cycles());
        assert_eq!(run2.report.total_macs(), 2 * run1.report.total_macs());
    }

    #[test]
    fn boundary_layout_contract_enforced() {
        let (layers, _, _) = chain();
        let cfg = FeatherConfig::new(4, 8);
        let mut steps: Vec<(ConvLayer, LayerMapping)> = layers
            .iter()
            .map(|l| {
                (
                    l.clone(),
                    LayerMapping::weight_stationary(l, &cfg, "HWC_C4", "PQM_M4"),
                )
            })
            .collect();
        // Break the boundary: layer 0's oAct layout no longer matches what
        // layer 1 wants to read.
        steps[0].1.oact_layout = "MPQ_Q4".parse().unwrap();
        let err = NetworkSession::from_mappings(cfg, steps).unwrap_err();
        assert!(err.to_string().contains("RIR must target"), "{err}");
    }

    #[test]
    fn non_chaining_layers_rejected() {
        let cfg = FeatherConfig::new(4, 4);
        let l0 = ConvLayer::new(1, 4, 4, 6, 6, 3, 3).with_padding(1);
        let l1 = ConvLayer::new(1, 4, 8, 6, 6, 1, 1); // 8 != 4 output channels
        let err =
            NetworkSession::weight_stationary(cfg, &[l0, l1], &["HWC_C4", "HWC_C4"], "MPQ_Q4")
                .unwrap_err();
        assert!(err.to_string().contains("does not chain"), "{err}");
    }

    #[test]
    fn empty_session_rejected() {
        assert!(NetworkSession::from_mappings(FeatherConfig::new(4, 4), vec![]).is_err());
    }

    #[test]
    fn per_layer_reports_are_plausible() {
        let s = session();
        let run = s
            .run(&Tensor4::random([1, 4, 6, 6], 20), &chain_weights())
            .unwrap();
        for layer in &run.report.layers {
            assert!(layer.report.cycles > 0, "{}", layer.name);
            assert!(layer.report.macs > 0);
            assert!(layer.report.utilization > 0.0 && layer.report.utilization <= 1.0);
            assert!(layer.report.energy.total_pj() > 0.0);
            assert!(layer.report.dram_weight_bytes > 0);
        }
        let pes = s.config().num_pes();
        let u = run.report.utilization(pes);
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn from_schedule_builds_runnable_session() {
        use feather_arch::dataflow::{ArrayShape, Dataflow};

        let (layers, _, _) = chain();
        let cfg = FeatherConfig::new(4, 8);
        let schedule: Vec<(Dataflow, Layout)> = layers
            .iter()
            .map(|l| {
                (
                    Dataflow::weight_stationary(ArrayShape::new(4, 8), &l.clone().into()),
                    "HWC_C4".parse().unwrap(),
                )
            })
            .collect();
        let s = NetworkSession::from_schedule(cfg, &layers, &schedule, "MPQ_Q4".parse().unwrap())
            .unwrap();
        let iacts = Tensor4::random([1, 4, 6, 6], 20);
        let run = s.run(&iacts, &chain_weights()).unwrap();
        let golden = s.run_layer_at_a_time(&iacts, &chain_weights()).unwrap();
        assert_eq!(run.oacts, golden);
    }
}
