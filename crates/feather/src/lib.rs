//! # feather
//!
//! End-to-end functional simulator of the FEATHER accelerator (ISCA 2024):
//! the NEST PE array, the BIRRD reorder-reduction network, the ping/pong
//! Stationary Buffer (StaB), the Streaming Buffer (StrB) and the quantization
//! module, orchestrated by a per-layer controller that implements
//! **Reorder-in-Reduction (RIR)** — output activations are written back to the
//! StaB already in the layout the *next* layer's dataflow wants, at zero extra
//! latency.
//!
//! The simulator is *functional*: it moves real INT8/INT32 values through the
//! PE accumulators, the BIRRD switches and the banked buffers, and its results
//! are checked against the golden convolution/GEMM kernels of
//! [`feather_arch::tensor`]. A cycle-accounting layer
//! ([`feather_nest::timing`]) and the buffer access statistics provide the
//! latency/energy numbers used by the examples and benchmarks.
//!
//! Single layers run through [`Feather::execute_conv`] /
//! [`Feather::execute_gemm`]; whole layer chains pipeline back-to-back
//! through the ping/pong StaB via [`session::NetworkSession`], which is where
//! RIR pays off: intermediate activations are reduced directly into the next
//! layer's layout and never leave the chip. Full model *graphs* — residual
//! branches and joins included — execute through
//! [`graph_session::GraphSession`], which schedules the tensor DAG over the
//! same pipeline core, parks shortcut tensors in an on-chip scratch region
//! and performs the quantized residual adds at join points.
//!
//! # Example
//!
//! ```
//! use feather::{Feather, FeatherConfig, LayerMapping};
//! use feather_arch::workload::ConvLayer;
//! use feather_arch::tensor::Tensor4;
//!
//! let layer = ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1).with_name("demo");
//! let iacts = Tensor4::random([1, 8, 6, 6], 1);
//! let weights = Tensor4::random([8, 8, 3, 3], 2);
//!
//! let mut acc = Feather::new(FeatherConfig::new(4, 4));
//! let mapping = LayerMapping::weight_stationary(&layer, &acc.config(), "HWC_C4", "MPQ_Q4");
//! let run = acc.execute_conv(&layer, &mapping, &iacts, &weights).unwrap();
//!
//! // The functional result matches the golden convolution.
//! let golden = feather_arch::tensor::conv2d_reference(&layer, &iacts, &weights).unwrap();
//! assert_eq!(run.oacts, golden);
//! assert!(run.report.utilization > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod config;
mod core;
pub mod graph_session;
pub mod mapping;
pub mod program;
pub mod report;
pub mod session;

pub use crate::core::{default_threads, RouteCacheStats};
pub use accelerator::Feather;
pub use config::FeatherConfig;
pub use graph_session::GraphSession;
pub use mapping::LayerMapping;
pub use program::{ArtifactStatus, BatchedScratch, Program, ProgramSession, ReplayScratch};
pub use report::{
    GraphReport, GraphRun, JoinSummary, LayerRun, LayerSummary, NetworkReport, NetworkRun,
    RunReport, SegmentSummary,
};
pub use session::NetworkSession;
