//! Ahead-of-time graph compilation: lower a planned [`GraphSession`] into a
//! flat, serializable [`Program`] of ops and replay it with zero per-layer
//! planning — the accelerator-as-ISA execution model.
//!
//! The interpreted [`GraphSession::run`] re-walks the DAG on every call:
//! consumer counts, scratch keys, weight clones, per-layer context builds and
//! hashed route-cache lookups all happen on the hot path. A serving process
//! replays the *same* schedule thousands of times, so all of that work is
//! hoisted here into a one-time compile:
//!
//! * **[`Program`]** — a linear op stream ([`Op`]: `Stage`, `Fire`,
//!   `Reorder`, `Swap`, `Drain`, `Join`, `Park`/`Unpark`) with every layout,
//!   location plan, buffer spec, scratch move and compiled BIRRD route
//!   resolved at compile time. Routes live in direct `Arc` slots inside a
//!   per-layer [`RouteStream`] — replay never hashes a request or touches
//!   the shared route cache.
//! * **[`ProgramSession`]** — the executor: dispatches the op stream
//!   linearly. Replay is bit-identical to the interpreted session — outputs,
//!   cycle counts, access statistics, energy, the whole [`GraphRun`] report
//!   (enforced by the `program_equivalence` suite).
//! * **On-disk artifacts** — [`GraphSession::compile_cached`] persists
//!   programs under `FEATHER_CACHE_DIR/programs/` (next to layoutloop's
//!   co-search cache), keyed by a schedule fingerprint. Loading an artifact
//!   skips the compile pass entirely; the recorded route *requests* are
//!   re-routed deterministically, so artifacts stay small and the compiled
//!   programs identical.
//! * **[`Program::dump`]** — a diffable text listing of exactly what a run
//!   will do, locked down by a golden snapshot test.
//!
//! Route streams can be recorded without any input data because the
//! reduce-reorder pattern of every fire is a pure function of layer geometry
//! (the mapped-lane pattern and the oAct layout's bank assignment) — never of
//! activation or weight values. The compile pass therefore runs the tile loop
//! once over zeroed buffers in record mode, and replay consumes the recorded
//! stream cursor-style, jumping to per-block offsets so sharded workers stay
//! in sync with the serial recording.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use feather_arch::energy::EnergyModel;
use feather_arch::graph::{NodeId, NodeOp, TensorId};
use feather_arch::layout::LocationPlan4;
use feather_arch::tensor::{quantize_to_i8, quantize_value, saturating_add_i8, Tensor4};
use feather_arch::workload::{ConvKind, ConvLayer};
use feather_arch::{ArchError, Dim};
use feather_birrd::ReductionRequest;
use feather_memsim::{BufferSpec, LayoutView, PingPong, ScratchRegion};

use crate::accelerator::check_weight_shape;
use crate::config::FeatherConfig;
use crate::core::{
    run_conv_core, run_conv_core_batched, LayerExec, RouteExecution, RouteRecorder, RouteStream,
};
use crate::graph_session::{pool_window_weights, widen, GraphSession, Step};
use crate::mapping::LayerMapping;
use crate::report::{
    GraphReport, GraphRun, JoinSummary, LayerSummary, NetworkReport, SegmentSummary,
};
use crate::session::{for_each_oact, iact_spec, layer_summary, oact_spec};

/// Format header of a serialized program artifact; bump on layout changes
/// (unknown versions degrade to a recompile, never to an error). v2 added
/// the trailing whole-file `checksum` line.
const HEADER: &str = "feather-program v2";

/// Where a compiled program came from in [`GraphSession::compile_cached`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactStatus {
    /// Loaded from a matching on-disk artifact — no compile pass ran.
    Hit,
    /// Compiled fresh and saved back to the artifact cache.
    Miss,
    /// `FEATHER_CACHE_DIR` is unset — compiled fresh, nothing persisted.
    Disabled,
    /// An artifact existed at the right path but was unusable — bad
    /// checksum, truncation, stale format, or a fingerprint mismatch. It
    /// was renamed aside to `<name>.bad` (so it is detected exactly once,
    /// not re-parsed on every cache miss) and a fresh compile replaced it.
    Quarantined,
}

/// What [`Program::load_checked`] found on disk.
#[derive(Debug)]
pub(crate) enum LoadOutcome {
    /// Parsed and checksum-verified.
    Loaded(Box<Program>),
    /// A file exists but is unusable (corrupt, truncated, or stale format).
    Corrupt,
    /// No file (or it is unreadable).
    Missing,
}

/// One slot of a program's tensor table: a graph tensor's id, its scratch
/// key and its batched run-time shape.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TensorSlot {
    /// The graph [`TensorId`] index.
    id: usize,
    /// Scratch-region key — identical to the interpreted session's
    /// `TensorId::to_string` so scratch traffic accounting matches exactly.
    key: String,
    /// `(N, C, H, W)` shape with the batch extent applied.
    shape: [usize; 4],
}

/// Where a compiled layer's weights come from at replay time.
#[derive(Debug, Clone)]
enum WeightSource {
    /// Supplied by the caller, keyed by graph node.
    Node(NodeId),
    /// Synthesized pooling-window constants (never streamed from DRAM).
    Pool(Tensor4<i8>),
}

/// One fully-resolved layer of a compiled segment: the owned tile-loop
/// context, the buffer disciplines of both StaB halves, the precompiled
/// location plans and the frozen route stream.
#[derive(Debug, Clone)]
struct CompiledLayer {
    exec: LayerExec,
    weight: WeightSource,
    iact_spec: BufferSpec,
    oact_spec: BufferSpec,
    idims: BTreeMap<Dim, usize>,
    odims: BTreeMap<Dim, usize>,
    iact_plan: LocationPlan4,
    oact_plan: LocationPlan4,
    routes: RouteStream,
}

/// A compiled linear segment: its layers plus the graph-level flags that
/// drive DRAM accounting.
#[derive(Debug, Clone)]
struct CompiledSegment {
    /// Node names in execution order (one per layer).
    names: Vec<String>,
    /// Tensor-table slot the segment reads.
    input: usize,
    /// Tensor-table slot the segment produces.
    output: usize,
    /// The segment reads the graph input (its iAct staging hits DRAM).
    graph_input: bool,
    /// The segment produces the graph output (its oActs drain to DRAM).
    graph_output: bool,
    layers: Vec<CompiledLayer>,
}

/// A compiled residual join: where its two operands come from and where the
/// sum goes.
#[derive(Debug, Clone)]
struct JoinSpec {
    name: String,
    /// Tensor-table slot of the sum.
    output: usize,
    a: OperandSrc,
    b: OperandSrc,
    graph_output: bool,
}

/// How a join operand (or segment input) is acquired at replay time —
/// resolved at compile time from the interpreted session's consumer counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OperandSrc {
    /// The fresh StaB resident; `take` moves it out (last consumer),
    /// otherwise it is cloned and stays fresh.
    Fresh {
        /// This is the tensor's last consumer.
        take: bool,
    },
    /// The front of the unpark queue (a preceding [`Op::Unpark`] fetched it
    /// from the scratch region).
    Queue,
}

/// One instruction of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Acquire the segment input and stage it into a fresh ping/pong StaB.
    Stage {
        seg: usize,
        /// Source: the fresh register (`true`) or the unpark queue.
        fresh: bool,
        /// Move the fresh tensor out instead of cloning it.
        take: bool,
    },
    /// Run one layer's tile loop, replaying its recorded route stream.
    Fire { seg: usize, layer: usize },
    /// Boundary quantization in place (RIR already reordered the values).
    Reorder { seg: usize, layer: usize },
    /// Swap the StaB halves.
    Swap { seg: usize },
    /// Drain the segment output, assemble its report, quantize it into the
    /// fresh register.
    Drain { seg: usize },
    /// Perform a residual add.
    Join { join: usize },
    /// Park the displaced fresh tensor in the scratch region (it still has
    /// consumers).
    Park { tensor: usize },
    /// Fetch a parked tensor into the unpark queue; `free` releases the
    /// allocation (last consumer).
    Unpark { tensor: usize, free: bool },
}

/// A flat, replayable lowering of a planned graph: every layout, location
/// plan, BIRRD route and scratch move resolved ahead of time. Produced by
/// [`GraphSession::compile`], executed by [`ProgramSession`], serialized to
/// the `FEATHER_CACHE_DIR/programs/` artifact cache.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    config: FeatherConfig,
    batch: usize,
    quant_shift: u32,
    quant_zero: i8,
    threads: Option<usize>,
    /// Batched `(N, C, H, W)` shape of the graph input.
    input_shape: [usize; 4],
    /// Tensor-table slot of the graph input.
    input_slot: usize,
    fingerprint: u64,
    energy_model: EnergyModel,
    tensors: Vec<TensorSlot>,
    segments: Vec<CompiledSegment>,
    joins: Vec<JoinSpec>,
    ops: Vec<Op>,
}

impl Program {
    /// The compiled graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples per replayed run.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The hardware configuration the program was compiled for.
    pub fn config(&self) -> FeatherConfig {
        self.config
    }

    /// The schedule fingerprint this program was compiled from — matches
    /// [`GraphSession::fingerprint`] of the originating session.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of ops in the instruction stream.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total recorded route-stream entries (BIRRD fires) across all layers.
    pub fn route_fires(&self) -> usize {
        self.segments
            .iter()
            .flat_map(|s| &s.layers)
            .map(|l| l.routes.stream.len())
            .sum()
    }

    /// The default artifact location for this program:
    /// `FEATHER_CACHE_DIR/programs/<name>-b<batch>-<fingerprint>.program`,
    /// or `None` when `FEATHER_CACHE_DIR` is unset.
    pub fn artifact_path(&self) -> Option<PathBuf> {
        cache_dir().map(|dir| artifact_path(&dir, &self.name, self.batch, self.fingerprint))
    }

    /// Serializes the program to `path` (parent directories are created).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.serialize())
    }

    /// Loads a program from `path`. Any failure — missing file, unknown
    /// header version, checksum mismatch, malformed content, an unroutable
    /// recorded request — returns `None` so callers degrade to a recompile.
    pub fn load_from(path: &Path) -> Option<Program> {
        match Program::load_checked(path) {
            LoadOutcome::Loaded(program) => Some(*program),
            LoadOutcome::Corrupt | LoadOutcome::Missing => None,
        }
    }

    /// [`Program::load_from`] distinguishing *no artifact* from *a corrupt
    /// one*, so the artifact cache can quarantine the latter instead of
    /// re-parsing it on every miss.
    pub(crate) fn load_checked(path: &Path) -> LoadOutcome {
        let Ok(text) = std::fs::read_to_string(path) else {
            return LoadOutcome::Missing;
        };
        match parse_program(&text) {
            Some(program) => LoadOutcome::Loaded(Box::new(program)),
            None => LoadOutcome::Corrupt,
        }
    }

    /// A diffable text listing of exactly what a replayed run does: the
    /// fabric, the tensor table, every compiled layer with its mapping,
    /// layouts and route-stream size, the joins and the full op stream. The
    /// format is deterministic and locked by a golden snapshot test.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program \"{}\" fingerprint {:016x}",
            self.name, self.fingerprint
        );
        let _ = writeln!(
            out,
            "fabric {}x{} stab_lines={} strb_lines={}",
            self.config.rows, self.config.cols, self.config.stab_lines, self.config.strb_lines
        );
        let threads = match self.threads {
            Some(n) => n.to_string(),
            None => "auto".to_string(),
        };
        let _ = writeln!(
            out,
            "batch {} quant shift={} zero={} threads={}",
            self.batch, self.quant_shift, self.quant_zero, threads
        );
        let _ = writeln!(
            out,
            "input {} {:?}",
            self.tensors[self.input_slot].key, self.input_shape
        );
        let _ = writeln!(out, "tensors:");
        for slot in &self.tensors {
            let _ = writeln!(out, "  {} {:?}", slot.key, slot.shape);
        }
        let _ = writeln!(out, "segments:");
        for (si, seg) in self.segments.iter().enumerate() {
            let mut flags = String::new();
            if seg.graph_input {
                flags.push_str(" graph_input");
            }
            if seg.graph_output {
                flags.push_str(" graph_output");
            }
            let _ = writeln!(
                out,
                "  seg {si}: in={} out={}{}",
                self.tensors[seg.input].key, self.tensors[seg.output].key, flags
            );
            for (li, layer) in seg.layers.iter().enumerate() {
                let l = &layer.exec.layer;
                let m = &layer.exec.mapping;
                let kind = kind_token(l.kind);
                let weights = match &layer.weight {
                    WeightSource::Node(id) => format!("w={id}"),
                    WeightSource::Pool(_) => "w=pool".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    layer {li} {}: conv n{} m{} c{} {}x{} k{}x{} s{} p{} {kind} {weights}",
                    seg.names[li], l.n, l.m, l.c, l.h, l.w, l.r, l.s, l.stride, l.padding
                );
                let _ = writeln!(
                    out,
                    "      map m_rows={} c_cols={} q_cols={} iact={} oact={}",
                    m.m_rows, m.c_cols, m.q_cols, m.iact_layout, m.oact_layout
                );
                let _ = writeln!(
                    out,
                    "      routes slots={} fires={} blocks={}",
                    layer.routes.slots.len(),
                    layer.routes.stream.len(),
                    layer.routes.block_starts.len()
                );
            }
        }
        let _ = writeln!(out, "joins:");
        for (ji, join) in self.joins.iter().enumerate() {
            let _ = writeln!(
                out,
                "  join {ji} {}: out={} a={} b={}{}",
                join.name,
                self.tensors[join.output].key,
                operand_token(join.a),
                operand_token(join.b),
                if join.graph_output {
                    " graph_output"
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "ops:");
        for (i, op) in self.ops.iter().enumerate() {
            let text = match *op {
                Op::Stage { seg, fresh, take } => {
                    let src = match (fresh, take) {
                        (true, true) => "fresh move",
                        (true, false) => "fresh copy",
                        (false, _) => "queue",
                    };
                    format!("stage   seg={seg} src={src}")
                }
                Op::Fire { seg, layer } => format!("fire    seg={seg} layer={layer}"),
                Op::Reorder { seg, layer } => format!("reorder seg={seg} layer={layer}"),
                Op::Swap { seg } => format!("swap    seg={seg}"),
                Op::Drain { seg } => format!("drain   seg={seg}"),
                Op::Join { join } => format!("join    {}", self.joins[join].name),
                Op::Park { tensor } => format!("park    {}", self.tensors[tensor].key),
                Op::Unpark { tensor, free } => format!(
                    "unpark  {}{}",
                    self.tensors[tensor].key,
                    if free { " free" } else { "" }
                ),
            };
            let _ = writeln!(out, "  {i:04} {text}");
        }
        out
    }

    // ---------------------------------------------------------------- save

    fn serialize(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let threads = match self.threads {
            Some(n) => n.to_string(),
            None => "auto".to_string(),
        };
        let _ = writeln!(
            out,
            "meta name={} rows={} cols={} stab={} strb={} batch={} shift={} zero={} \
             threads={} fp={:016x} input={}",
            esc(&self.name),
            self.config.rows,
            self.config.cols,
            self.config.stab_lines,
            self.config.strb_lines,
            self.batch,
            self.quant_shift,
            self.quant_zero,
            threads,
            self.fingerprint,
            self.input_slot
        );
        for slot in &self.tensors {
            let _ = writeln!(
                out,
                "tensor id={} shape={}",
                slot.id,
                join_usizes(&slot.shape)
            );
        }
        for seg in &self.segments {
            let _ = writeln!(
                out,
                "segment in={} out={} gin={} gout={}",
                seg.input,
                seg.output,
                u8::from(seg.graph_input),
                u8::from(seg.graph_output)
            );
        }
        for (si, seg) in self.segments.iter().enumerate() {
            for (li, layer) in seg.layers.iter().enumerate() {
                let l = &layer.exec.layer;
                let m = &layer.exec.mapping;
                let wsrc = match &layer.weight {
                    WeightSource::Node(id) => format!("n{}", id.0),
                    WeightSource::Pool(_) => "pool".to_string(),
                };
                let _ = writeln!(
                    out,
                    "layer seg={si} name={} conv={},{},{},{},{},{},{},{},{},{} \
                     map={},{},{} iact={} oact={} wsrc={wsrc}",
                    esc(&seg.names[li]),
                    l.n,
                    l.m,
                    l.c,
                    l.h,
                    l.w,
                    l.r,
                    l.s,
                    l.stride,
                    l.padding,
                    kind_token(l.kind),
                    m.m_rows,
                    m.c_cols,
                    m.q_cols,
                    esc(&m.iact_layout.to_string()),
                    esc(&m.oact_layout.to_string())
                );
                for request in &layer.routes.requests {
                    let groups: Vec<String> = request
                        .input_groups
                        .iter()
                        .map(|g| match g {
                            Some(gid) => gid.to_string(),
                            None => "-".to_string(),
                        })
                        .collect();
                    let dests: Vec<String> = request
                        .group_destinations
                        .iter()
                        .map(|(gid, bank)| format!("{gid}:{bank}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "slot seg={si} layer={li} groups={} dests={}",
                        groups.join(","),
                        dests.join(",")
                    );
                }
                let _ = writeln!(
                    out,
                    "stream seg={si} layer={li} {}",
                    rle_encode(&layer.routes.stream)
                );
                let deltas = deltas_of(&layer.routes.block_starts);
                let _ = writeln!(out, "blocks seg={si} layer={li} {}", rle_encode(&deltas));
            }
        }
        for join in &self.joins {
            let _ = writeln!(
                out,
                "join name={} out={} a={} b={} gout={}",
                esc(&join.name),
                join.output,
                operand_token(join.a),
                operand_token(join.b),
                u8::from(join.graph_output)
            );
        }
        for op in &self.ops {
            let line = match *op {
                Op::Stage { seg, fresh, take } => format!(
                    "op stage seg={seg} fresh={} take={}",
                    u8::from(fresh),
                    u8::from(take)
                ),
                Op::Fire { seg, layer } => format!("op fire seg={seg} layer={layer}"),
                Op::Reorder { seg, layer } => format!("op reorder seg={seg} layer={layer}"),
                Op::Swap { seg } => format!("op swap seg={seg}"),
                Op::Drain { seg } => format!("op drain seg={seg}"),
                Op::Join { join } => format!("op join join={join}"),
                Op::Park { tensor } => format!("op park t={tensor}"),
                Op::Unpark { tensor, free } => {
                    format!("op unpark t={tensor} free={}", u8::from(free))
                }
            };
            let _ = writeln!(out, "{line}");
        }
        // Whole-file integrity: the checksum covers every byte above it, so
        // truncation, bit flips and partial writes are all detected on load.
        let sum = fnv1a64(out.as_bytes());
        let _ = writeln!(out, "checksum {sum:016x}");
        out
    }
}

/// Reusable replay allocations: the per-segment StaB ping/pong pairs a
/// [`ProgramSession::run_with_scratch`] call parks between runs instead of
/// reallocating. One scratch belongs to one executor thread at a time (it is
/// `&mut` for the whole run) and adapts automatically when handed a
/// different program — the parked buffers are reshaped to the new program's
/// specs, so a worker serving many (model, batch) pairs can keep one scratch
/// per pair or share fewer and only pay a reshape.
///
/// Replaying through a reused scratch is bit-identical to replaying through
/// a fresh one (outputs *and* the full report) — buffers are re-provisioned
/// with [`PingPong::reset`] at every segment stage.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    /// `(fingerprint, batch)` of the program the stash was last used with;
    /// a mismatch drops the stash so one scratch never hoards buffers shaped
    /// for a program it no longer serves.
    shaped_for: Option<(u64, usize)>,
    /// One parked StaB pair per program segment.
    stabs: Vec<Option<PingPong<i32>>>,
}

impl ReplayScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        ReplayScratch::default()
    }

    /// Re-targets the stash at `program`, dropping buffers from any other,
    /// and marks it dirty until [`ReplayScratch::commit`]: if the replay
    /// panics mid-run (a supervised serving worker catches it), the next
    /// `begin` sees the mismatch and drops the half-staged stash instead of
    /// replaying through it.
    fn begin(&mut self, program: &Program) {
        let key = (program.fingerprint, program.batch);
        if self.shaped_for != Some(key) {
            self.stabs.clear();
        }
        self.shaped_for = None;
        if self.stabs.len() != program.segments.len() {
            self.stabs.resize_with(program.segments.len(), || None);
        }
    }

    /// Marks a completed run's stash clean so the next `begin` reuses it.
    fn commit(&mut self, program: &Program) {
        self.shaped_for = Some((program.fingerprint, program.batch));
    }
}

/// Reusable allocations for [`ProgramSession::run_batched_with_scratch`]:
/// the lane-striped StaB pairs of the batched replay backend. Works exactly
/// like [`ReplayScratch`] but keys the stash on the lane count too — a pair
/// striped for 4 lanes cannot serve an 8-lane run, so a mismatch drops the
/// stash and the next run regrows it.
#[derive(Debug, Default)]
pub struct BatchedScratch {
    /// `(fingerprint, batch, lanes)` of the last run through this scratch.
    shaped_for: Option<(u64, usize, usize)>,
    /// One parked lane-striped StaB pair per program segment.
    stabs: Vec<Option<PingPong<i32>>>,
}

impl BatchedScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        BatchedScratch::default()
    }

    /// Re-targets the stash at `(program, lanes)`, dropping buffers from any
    /// other shape; dirty until [`BatchedScratch::commit`] — a panicking
    /// replay abandons the stash (see [`ReplayScratch::begin`]).
    fn begin(&mut self, program: &Program, lanes: usize) {
        let key = (program.fingerprint, program.batch, lanes);
        if self.shaped_for != Some(key) {
            self.stabs.clear();
        }
        self.shaped_for = None;
        if self.stabs.len() != program.segments.len() {
            self.stabs.resize_with(program.segments.len(), || None);
        }
    }

    /// Marks a completed run's stash clean so the next `begin` reuses it.
    fn commit(&mut self, program: &Program, lanes: usize) {
        self.shaped_for = Some((program.fingerprint, program.batch, lanes));
    }
}

/// The graph-DAG replay executor: dispatches a compiled [`Program`]'s op
/// stream linearly. Cheap to clone (the program is shared through an `Arc`);
/// safe to use from multiple threads via `&self`.
#[derive(Debug, Clone)]
pub struct ProgramSession {
    program: Arc<Program>,
    threads: Option<usize>,
}

impl ProgramSession {
    /// Wraps a compiled program for execution.
    pub fn new(program: Program) -> Self {
        Self::from_arc(Arc::new(program))
    }

    /// Wraps an already-shared compiled program.
    pub fn from_arc(program: Arc<Program>) -> Self {
        ProgramSession {
            program,
            threads: None,
        }
    }

    /// Pins the executor's worker-thread count (builder style), overriding
    /// the count captured at compile time. The parallel replay is
    /// bit-identical to the serial one.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The compiled program this session replays.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Replays the program: bit-identical to [`GraphSession::run`] of the
    /// originating session — outputs, cycles, access statistics and reports
    /// alike — with zero planning, hashing or weight cloning on the hot path.
    ///
    /// # Errors
    /// Returns an error on missing weights or operand shape mismatches.
    pub fn run(
        &self,
        iacts: &Tensor4<i8>,
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<GraphRun, ArchError> {
        self.run_with_scratch(&mut ReplayScratch::new(), iacts, weights)
    }

    /// [`ProgramSession::run`] reusing `scratch`'s buffer allocations across
    /// calls: each segment's StaB ping/pong pair is parked in the scratch at
    /// drain time and re-provisioned (reshaped + cleared, no reallocation) at
    /// the next stage, so a serving executor's steady state allocates no
    /// buffer memory per request. Results are bit-identical to
    /// [`ProgramSession::run`] with a fresh scratch.
    ///
    /// # Errors
    /// Returns an error on missing weights or operand shape mismatches.
    pub fn run_with_scratch(
        &self,
        scratch_bufs: &mut ReplayScratch,
        iacts: &Tensor4<i8>,
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<GraphRun, ArchError> {
        let p = &*self.program;
        scratch_bufs.begin(p);
        if iacts.shape() != p.input_shape {
            return Err(ArchError::ShapeMismatch(format!(
                "graph input shape {:?}, expected {:?}",
                iacts.shape(),
                p.input_shape
            )));
        }
        let threads = self.threads.or(p.threads);

        let mut scratch: ScratchRegion<i8> = ScratchRegion::new(p.config.cols.max(1));
        let mut fresh: Option<(usize, Tensor4<i8>)> = Some((p.input_slot, iacts.clone()));
        let mut displaced: Option<(usize, Tensor4<i8>)> = None;
        let mut queue: VecDeque<Tensor4<i8>> = VecDeque::new();
        let mut segment_reports: Vec<SegmentSummary> = Vec::with_capacity(p.segments.len());
        let mut join_reports: Vec<JoinSummary> = Vec::with_capacity(p.joins.len());
        let mut final_acc: Option<Tensor4<i32>> = None;

        // In-flight segment state between its Stage and Drain ops.
        let mut stab: Option<PingPong<i32>> = None;
        let mut summaries: Vec<LayerSummary> = Vec::new();
        let mut input_from_scratch = false;

        let broken = |what: &str| {
            ArchError::InvalidWorkload(format!("compiled program is inconsistent: {what}"))
        };

        for op in &p.ops {
            match *op {
                Op::Unpark { tensor, free } => {
                    let slot = &p.tensors[tensor];
                    let missing = || {
                        ArchError::InvalidWorkload(format!(
                            "tensor t{} consumed before being produced or after being freed",
                            slot.id
                        ))
                    };
                    // `fetch` counts the read; the final consumer then moves
                    // the parked allocation out instead of copying it.
                    let data = if free {
                        scratch.fetch(&slot.key).ok_or_else(missing)?;
                        scratch.release(&slot.key).expect("fetched above")
                    } else {
                        scratch.fetch(&slot.key).ok_or_else(missing)?.to_vec()
                    };
                    queue.push_back(Tensor4::from_vec(slot.shape, data)?);
                }
                Op::Stage {
                    seg,
                    fresh: from_fresh,
                    take,
                } => {
                    let input = if from_fresh {
                        if take {
                            fresh
                                .take()
                                .ok_or_else(|| broken("fresh operand missing"))?
                                .1
                        } else {
                            fresh
                                .as_ref()
                                .ok_or_else(|| broken("fresh operand missing"))?
                                .1
                                .clone()
                        }
                    } else {
                        queue
                            .pop_front()
                            .ok_or_else(|| broken("unpark queue is empty"))?
                    };
                    input_from_scratch = !from_fresh;
                    let cs = &p.segments[seg];
                    let first = &cs.layers[0];
                    let l = &first.exec.layer;
                    let expected = [l.n, l.c, l.h, l.w];
                    if input.shape() != expected {
                        return Err(ArchError::ShapeMismatch(format!(
                            "iacts shape {:?}, expected {:?}",
                            input.shape(),
                            expected
                        )));
                    }
                    let mut pp: PingPong<i32> = match scratch_bufs.stabs[seg].take() {
                        Some(mut parked) => {
                            parked.reset(first.iact_spec);
                            parked
                        }
                        None => PingPong::new(first.iact_spec),
                    };
                    {
                        let (active, _) = pp.split_mut();
                        let mut view =
                            LayoutView::new(active, &first.exec.mapping.iact_layout, &first.idims);
                        input.for_each(|coord, v| {
                            view.write_at(first.iact_plan.location(coord), v as i32)
                        });
                        view.flush_cycle();
                    }
                    stab = Some(pp);
                    summaries = Vec::with_capacity(cs.layers.len());
                }
                Op::Fire { seg, layer } => {
                    let cs = &p.segments[seg];
                    let cl = &cs.layers[layer];
                    let lw: &Tensor4<i8> = match &cl.weight {
                        WeightSource::Pool(w) => w,
                        WeightSource::Node(id) => weights.get(id).ok_or_else(|| {
                            ArchError::InvalidWorkload(format!(
                                "no weight tensor supplied for node `{}`",
                                cs.names[layer]
                            ))
                        })?,
                    };
                    check_weight_shape(&cl.exec.layer, lw)?;
                    let pp = stab.as_mut().ok_or_else(|| broken("fire before stage"))?;
                    pp.shadow().reshape(cl.oact_spec);
                    if layer > 0 {
                        pp.active().rebank(cl.iact_spec);
                    }
                    let iact_base = *pp.active_ref().stats();
                    let oact_base = *pp.shadow_ref().stats();
                    let core = {
                        let (active, shadow) = pp.split_mut();
                        let mut iact_view =
                            LayoutView::new(active, &cl.exec.mapping.iact_layout, &cl.idims);
                        let mut oact_view =
                            LayoutView::new(shadow, &cl.exec.mapping.oact_layout, &cl.odims);
                        run_conv_core(
                            &cl.exec,
                            lw,
                            &mut iact_view,
                            &mut oact_view,
                            RouteExecution::Replay(&cl.routes),
                            layer == 0,
                            threads,
                        )?
                    };
                    let iact_stats = pp.active_ref().stats().since(&iact_base);
                    let oact_stats = pp.shadow_ref().stats().since(&oact_base);
                    summaries.push(layer_summary(
                        &p.config,
                        &p.energy_model,
                        &cl.exec.layer,
                        &core,
                        iact_stats,
                        oact_stats,
                        layer == 0,
                        layer + 1 == cs.layers.len(),
                    ));
                }
                Op::Reorder { seg, layer } => {
                    let cl = &p.segments[seg].layers[layer];
                    let pp = stab
                        .as_mut()
                        .ok_or_else(|| broken("reorder before stage"))?;
                    let shadow = pp.shadow();
                    let mut view = LayoutView::new(shadow, &cl.exec.mapping.oact_layout, &cl.odims);
                    let (shift, zero) = (p.quant_shift, p.quant_zero);
                    for_each_oact(&cl.exec.layer, |coord| {
                        let loc = cl.oact_plan.location(coord);
                        let acc = view.peek_at(loc).unwrap_or(0);
                        view.poke_at(loc, quantize_value(acc, shift, zero) as i32);
                    });
                }
                Op::Swap { .. } => {
                    stab.as_mut()
                        .ok_or_else(|| broken("swap before stage"))?
                        .swap();
                }
                Op::Drain { seg } => {
                    let cs = &p.segments[seg];
                    let last = cs.layers.last().expect("segments are non-empty");
                    let mut pp = stab.take().ok_or_else(|| broken("drain before stage"))?;
                    let oacts = {
                        let (active, _) = pp.split_mut();
                        let view =
                            LayoutView::new(active, &last.exec.mapping.oact_layout, &last.odims);
                        let l = &last.exec.layer;
                        Tensor4::from_fn(
                            [l.n, l.m, l.output_height(), l.output_width()],
                            |n, m, ph, q| {
                                view.peek_at(last.oact_plan.location([n, m, ph, q]))
                                    .unwrap_or(0)
                            },
                        )
                    };
                    let mut report = NetworkReport {
                        layers: std::mem::take(&mut summaries),
                        stab_swaps: pp.swaps(),
                    };
                    scratch_bufs.stabs[seg] = Some(pp);
                    adjust_report(&mut report, cs, &p.energy_model);
                    segment_reports.push(SegmentSummary {
                        nodes: cs.names.clone(),
                        report,
                        input_from_scratch,
                    });
                    if cs.graph_output {
                        final_acc = Some(oacts.clone());
                    }
                    let quantized = quantize_to_i8(&oacts, p.quant_shift, p.quant_zero);
                    displaced = fresh.take();
                    fresh = Some((cs.output, quantized));
                }
                Op::Join { join } => {
                    let spec = &p.joins[join];
                    let a = take_operand(spec.a, &mut fresh, &mut queue, &broken)?;
                    let b = take_operand(spec.b, &mut fresh, &mut queue, &broken)?;
                    let (sum, saturated) = saturating_add_i8(&a, &b)?;
                    join_reports.push(JoinSummary {
                        name: spec.name.clone(),
                        elements: sum.len() as u64,
                        saturated,
                    });
                    if spec.graph_output {
                        final_acc = Some(widen(&sum));
                    }
                    displaced = fresh.take();
                    fresh = Some((spec.output, sum));
                }
                Op::Park { tensor } => {
                    let (_, data) = displaced
                        .take()
                        .ok_or_else(|| broken("park without a displaced tensor"))?;
                    scratch.park(p.tensors[tensor].key.clone(), data.as_slice().to_vec());
                }
            }
        }

        scratch_bufs.commit(p);
        Ok(GraphRun {
            oacts: final_acc.ok_or_else(|| broken("no op produced the graph output"))?,
            report: GraphReport {
                segments: segment_reports,
                joins: join_reports,
                scratch: *scratch.stats(),
                scratch_peak_elems: scratch.peak_occupancy() as u64,
            },
        })
    }

    /// Replays the program once per input sample, executing every op a single
    /// time across all samples in lane-vectorized lockstep — the batched
    /// replay backend. Activations live in lane stripes (sample `l` occupies
    /// lane `l` of every StaB cell), each BIRRD route gathers whole stripes,
    /// and every piece of cycle/conflict/traffic accounting runs **once**:
    /// the schedule, routes and access patterns are data-independent, so one
    /// sample's accounting is every sample's accounting. The returned runs —
    /// outputs *and* full reports — are bit-identical to calling
    /// [`ProgramSession::run`] on each sample alone (the per-lane
    /// [`JoinSummary`] saturation flags are the only data-dependent bits and
    /// are computed per lane).
    ///
    /// # Errors
    /// Returns an error on an empty batch, a sample shape mismatch, or
    /// missing weights.
    pub fn run_batched(
        &self,
        iacts: &[Tensor4<i8>],
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<Vec<GraphRun>, ArchError> {
        self.run_batched_with_scratch(&mut BatchedScratch::new(), iacts, weights)
    }

    /// [`ProgramSession::run_batched`] reusing `scratch`'s lane-striped StaB
    /// allocations across calls, the batched analogue of
    /// [`ProgramSession::run_with_scratch`]: a serving executor's steady
    /// state allocates no buffer memory per batch. Results are bit-identical
    /// to [`ProgramSession::run_batched`] with a fresh scratch.
    ///
    /// # Errors
    /// Returns an error on an empty batch, a sample shape mismatch, or
    /// missing weights.
    pub fn run_batched_with_scratch(
        &self,
        scratch_bufs: &mut BatchedScratch,
        iacts: &[Tensor4<i8>],
        weights: &BTreeMap<NodeId, Tensor4<i8>>,
    ) -> Result<Vec<GraphRun>, ArchError> {
        let p = &*self.program;
        let lanes = iacts.len();
        if lanes == 0 {
            return Err(ArchError::InvalidWorkload(
                "batched replay needs at least one sample".to_string(),
            ));
        }
        for sample in iacts {
            if sample.shape() != p.input_shape {
                return Err(ArchError::ShapeMismatch(format!(
                    "graph input shape {:?}, expected {:?}",
                    sample.shape(),
                    p.input_shape
                )));
            }
        }
        scratch_bufs.begin(p, lanes);
        let threads = self.threads.or(p.threads);

        // Parked tensors hold `lanes` concatenated per-lane copies; the lane
        // factor divides the region's accounting and occupancy back to one
        // sample's numbers — exactly what every lane's report clones.
        let mut scratch: ScratchRegion<i8> =
            ScratchRegion::with_lane_factor(p.config.cols.max(1), lanes);
        let mut fresh: Option<(usize, Vec<Tensor4<i8>>)> = Some((p.input_slot, iacts.to_vec()));
        let mut displaced: Option<(usize, Vec<Tensor4<i8>>)> = None;
        let mut queue: VecDeque<Vec<Tensor4<i8>>> = VecDeque::new();
        // Segment reports are identical across lanes (all accounting is
        // data-independent); join saturation is per lane.
        let mut segment_reports: Vec<SegmentSummary> = Vec::with_capacity(p.segments.len());
        let mut join_reports: Vec<Vec<JoinSummary>> =
            vec![Vec::with_capacity(p.joins.len()); lanes];
        let mut final_acc: Option<Vec<Tensor4<i32>>> = None;

        // In-flight segment state between its Stage and Drain ops.
        let mut stab: Option<PingPong<i32>> = None;
        let mut summaries: Vec<LayerSummary> = Vec::new();
        let mut input_from_scratch = false;

        let broken = |what: &str| {
            ArchError::InvalidWorkload(format!("compiled program is inconsistent: {what}"))
        };

        for op in &p.ops {
            match *op {
                Op::Unpark { tensor, free } => {
                    let slot = &p.tensors[tensor];
                    let missing = || {
                        ArchError::InvalidWorkload(format!(
                            "tensor t{} consumed before being produced or after being freed",
                            slot.id
                        ))
                    };
                    let data = if free {
                        scratch.fetch(&slot.key).ok_or_else(missing)?;
                        scratch.release(&slot.key).expect("fetched above")
                    } else {
                        scratch.fetch(&slot.key).ok_or_else(missing)?.to_vec()
                    };
                    let per_lane = data.len() / lanes;
                    let tensors = data
                        .chunks_exact(per_lane)
                        .map(|chunk| Tensor4::from_vec(slot.shape, chunk.to_vec()))
                        .collect::<Result<Vec<_>, _>>()?;
                    queue.push_back(tensors);
                }
                Op::Stage {
                    seg,
                    fresh: from_fresh,
                    take,
                } => {
                    let input = if from_fresh {
                        if take {
                            fresh
                                .take()
                                .ok_or_else(|| broken("fresh operand missing"))?
                                .1
                        } else {
                            fresh
                                .as_ref()
                                .ok_or_else(|| broken("fresh operand missing"))?
                                .1
                                .clone()
                        }
                    } else {
                        queue
                            .pop_front()
                            .ok_or_else(|| broken("unpark queue is empty"))?
                    };
                    input_from_scratch = !from_fresh;
                    let cs = &p.segments[seg];
                    let first = &cs.layers[0];
                    let l = &first.exec.layer;
                    let expected = [l.n, l.c, l.h, l.w];
                    if input[0].shape() != expected {
                        return Err(ArchError::ShapeMismatch(format!(
                            "iacts shape {:?}, expected {:?}",
                            input[0].shape(),
                            expected
                        )));
                    }
                    let mut pp: PingPong<i32> = match scratch_bufs.stabs[seg].take() {
                        Some(mut parked) => {
                            parked.reset(first.iact_spec);
                            parked
                        }
                        None => PingPong::with_lanes(first.iact_spec, lanes),
                    };
                    {
                        let (active, _) = pp.split_mut();
                        let mut view =
                            LayoutView::new(active, &first.exec.mapping.iact_layout, &first.idims);
                        // Lane 0 drives the coordinate walk; the other lanes
                        // follow by flat index (`for_each` visits coordinates
                        // in the row-major order `as_slice` stores).
                        let rest: Vec<&[i8]> = input.iter().skip(1).map(|t| t.as_slice()).collect();
                        let mut flat = 0usize;
                        input[0].for_each(|coord, v| {
                            let stripe = view.write_stripe_at(first.iact_plan.location(coord));
                            stripe[0] = Some(v as i32);
                            for (lane, data) in rest.iter().enumerate() {
                                stripe[lane + 1] = Some(data[flat] as i32);
                            }
                            flat += 1;
                        });
                        view.flush_cycle();
                    }
                    stab = Some(pp);
                    summaries = Vec::with_capacity(cs.layers.len());
                }
                Op::Fire { seg, layer } => {
                    let cs = &p.segments[seg];
                    let cl = &cs.layers[layer];
                    let lw: &Tensor4<i8> = match &cl.weight {
                        WeightSource::Pool(w) => w,
                        WeightSource::Node(id) => weights.get(id).ok_or_else(|| {
                            ArchError::InvalidWorkload(format!(
                                "no weight tensor supplied for node `{}`",
                                cs.names[layer]
                            ))
                        })?,
                    };
                    check_weight_shape(&cl.exec.layer, lw)?;
                    let pp = stab.as_mut().ok_or_else(|| broken("fire before stage"))?;
                    pp.shadow().reshape(cl.oact_spec);
                    if layer > 0 {
                        pp.active().rebank(cl.iact_spec);
                    }
                    let iact_base = *pp.active_ref().stats();
                    let oact_base = *pp.shadow_ref().stats();
                    let core = {
                        let (active, shadow) = pp.split_mut();
                        let mut iact_view =
                            LayoutView::new(active, &cl.exec.mapping.iact_layout, &cl.idims);
                        let mut oact_view =
                            LayoutView::new(shadow, &cl.exec.mapping.oact_layout, &cl.odims);
                        run_conv_core_batched(
                            &cl.exec,
                            lw,
                            &mut iact_view,
                            &mut oact_view,
                            &cl.routes,
                            layer == 0,
                            threads,
                            lanes,
                        )?
                    };
                    let iact_stats = pp.active_ref().stats().since(&iact_base);
                    let oact_stats = pp.shadow_ref().stats().since(&oact_base);
                    summaries.push(layer_summary(
                        &p.config,
                        &p.energy_model,
                        &cl.exec.layer,
                        &core,
                        iact_stats,
                        oact_stats,
                        layer == 0,
                        layer + 1 == cs.layers.len(),
                    ));
                }
                Op::Reorder { seg, layer } => {
                    let cl = &p.segments[seg].layers[layer];
                    let pp = stab
                        .as_mut()
                        .ok_or_else(|| broken("reorder before stage"))?;
                    let shadow = pp.shadow();
                    let mut view = LayoutView::new(shadow, &cl.exec.mapping.oact_layout, &cl.odims);
                    let (shift, zero) = (p.quant_shift, p.quant_zero);
                    for_each_oact(&cl.exec.layer, |coord| {
                        let stripe = view.poke_stripe_at(cl.oact_plan.location(coord));
                        for cell in stripe.iter_mut() {
                            let acc = cell.unwrap_or(0);
                            *cell = Some(quantize_value(acc, shift, zero) as i32);
                        }
                    });
                }
                Op::Swap { .. } => {
                    stab.as_mut()
                        .ok_or_else(|| broken("swap before stage"))?
                        .swap();
                }
                Op::Drain { seg } => {
                    let cs = &p.segments[seg];
                    let last = cs.layers.last().expect("segments are non-empty");
                    let mut pp = stab.take().ok_or_else(|| broken("drain before stage"))?;
                    let oacts: Vec<Tensor4<i32>> = {
                        let (active, _) = pp.split_mut();
                        let view =
                            LayoutView::new(active, &last.exec.mapping.oact_layout, &last.odims);
                        let l = &last.exec.layer;
                        (0..lanes)
                            .map(|lane| {
                                Tensor4::from_fn(
                                    [l.n, l.m, l.output_height(), l.output_width()],
                                    |n, m, ph, q| {
                                        view.peek_stripe_at(last.oact_plan.location([n, m, ph, q]))
                                            [lane]
                                            .unwrap_or(0)
                                    },
                                )
                            })
                            .collect()
                    };
                    let mut report = NetworkReport {
                        layers: std::mem::take(&mut summaries),
                        stab_swaps: pp.swaps(),
                    };
                    scratch_bufs.stabs[seg] = Some(pp);
                    adjust_report(&mut report, cs, &p.energy_model);
                    segment_reports.push(SegmentSummary {
                        nodes: cs.names.clone(),
                        report,
                        input_from_scratch,
                    });
                    if cs.graph_output {
                        final_acc = Some(oacts.clone());
                    }
                    let quantized: Vec<Tensor4<i8>> = oacts
                        .iter()
                        .map(|o| quantize_to_i8(o, p.quant_shift, p.quant_zero))
                        .collect();
                    displaced = fresh.take();
                    fresh = Some((cs.output, quantized));
                }
                Op::Join { join } => {
                    let spec = &p.joins[join];
                    let a = take_operand_lanes(spec.a, &mut fresh, &mut queue, &broken)?;
                    let b = take_operand_lanes(spec.b, &mut fresh, &mut queue, &broken)?;
                    let mut sums: Vec<Tensor4<i8>> = Vec::with_capacity(lanes);
                    for (lane, (la, lb)) in a.iter().zip(&b).enumerate() {
                        let (sum, saturated) = saturating_add_i8(la, lb)?;
                        join_reports[lane].push(JoinSummary {
                            name: spec.name.clone(),
                            elements: sum.len() as u64,
                            saturated,
                        });
                        sums.push(sum);
                    }
                    if spec.graph_output {
                        final_acc = Some(sums.iter().map(widen).collect());
                    }
                    displaced = fresh.take();
                    fresh = Some((spec.output, sums));
                }
                Op::Park { tensor } => {
                    let (_, data) = displaced
                        .take()
                        .ok_or_else(|| broken("park without a displaced tensor"))?;
                    let mut flat: Vec<i8> = Vec::with_capacity(data.len() * data[0].len());
                    for lane in &data {
                        flat.extend_from_slice(lane.as_slice());
                    }
                    scratch.park(p.tensors[tensor].key.clone(), flat);
                }
            }
        }

        let final_acc = final_acc.ok_or_else(|| broken("no op produced the graph output"))?;
        scratch_bufs.commit(p, lanes);
        let scratch_stats = *scratch.stats();
        let scratch_peak = scratch.peak_occupancy() as u64;
        Ok(final_acc
            .into_iter()
            .enumerate()
            .map(|(lane, oacts)| GraphRun {
                oacts,
                report: GraphReport {
                    segments: segment_reports.clone(),
                    joins: std::mem::take(&mut join_reports[lane]),
                    scratch: scratch_stats,
                    scratch_peak_elems: scratch_peak,
                },
            })
            .collect())
    }
}

/// [`take_operand`] for the batched executor: one tensor per lane.
fn take_operand_lanes(
    src: OperandSrc,
    fresh: &mut Option<(usize, Vec<Tensor4<i8>>)>,
    queue: &mut VecDeque<Vec<Tensor4<i8>>>,
    broken: &impl Fn(&str) -> ArchError,
) -> Result<Vec<Tensor4<i8>>, ArchError> {
    match src {
        OperandSrc::Fresh { take: true } => Ok(fresh
            .take()
            .ok_or_else(|| broken("fresh operand missing"))?
            .1),
        OperandSrc::Fresh { take: false } => Ok(fresh
            .as_ref()
            .ok_or_else(|| broken("fresh operand missing"))?
            .1
            .clone()),
        OperandSrc::Queue => queue
            .pop_front()
            .ok_or_else(|| broken("unpark queue is empty")),
    }
}

/// Resolves a join operand from the fresh register or the unpark queue.
fn take_operand(
    src: OperandSrc,
    fresh: &mut Option<(usize, Tensor4<i8>)>,
    queue: &mut VecDeque<Tensor4<i8>>,
    broken: &impl Fn(&str) -> ArchError,
) -> Result<Tensor4<i8>, ArchError> {
    match src {
        OperandSrc::Fresh { take: true } => Ok(fresh
            .take()
            .ok_or_else(|| broken("fresh operand missing"))?
            .1),
        OperandSrc::Fresh { take: false } => Ok(fresh
            .as_ref()
            .ok_or_else(|| broken("fresh operand missing"))?
            .1
            .clone()),
        OperandSrc::Queue => queue
            .pop_front()
            .ok_or_else(|| broken("unpark queue is empty")),
    }
}

/// Rewrites a drained segment's report for graph-level DRAM accounting —
/// the compiled mirror of the interpreted session's `adjust_report`.
fn adjust_report(report: &mut NetworkReport, seg: &CompiledSegment, energy: &EnergyModel) {
    let mut dirty: Vec<usize> = Vec::new();
    if !seg.graph_input {
        report.layers[0].report.dram_iact_bytes = 0;
        dirty.push(0);
    }
    if !seg.graph_output {
        let last = report.layers.len() - 1;
        report.layers[last].report.dram_oact_bytes = 0;
        dirty.push(last);
    }
    for (i, layer) in seg.layers.iter().enumerate() {
        if matches!(layer.weight, WeightSource::Pool(_)) {
            report.layers[i].report.dram_weight_bytes = 0;
            dirty.push(i);
        }
    }
    for i in dirty {
        let layer = &mut report.layers[i].report;
        layer.energy.dram_pj = energy.dram_pj(layer.dram_bytes());
    }
}

// ------------------------------------------------------------------ compile

/// Lowers a planned session into a [`Program`] — the implementation behind
/// [`GraphSession::compile`].
pub(crate) fn compile(session: &GraphSession) -> Result<Program, ArchError> {
    let graph = session.graph();
    let config = session.config();
    let (quant_shift, quant_zero) = session.quantization();
    let batch = session.batch();

    // Tensor table: the graph input plus every node output, with batched
    // shapes and the scratch keys the interpreted session uses.
    let mut tensors: Vec<TensorSlot> = Vec::new();
    let mut slot_of: BTreeMap<TensorId, usize> = BTreeMap::new();
    let mut add_tensor = |t: TensorId, tensors: &mut Vec<TensorSlot>| {
        let mut shape = graph.tensor_shape(t);
        shape[0] = batch;
        slot_of.entry(t).or_insert_with(|| {
            tensors.push(TensorSlot {
                id: t.0,
                key: t.to_string(),
                shape,
            });
            tensors.len() - 1
        });
    };
    add_tensor(graph.input(), &mut tensors);
    for node in graph.nodes() {
        add_tensor(node.output, &mut tensors);
    }
    let input_slot = slot_of[&graph.input()];
    let input_shape = tensors[input_slot].shape;

    // Compile every segment: build the owned layer contexts and record each
    // layer's route stream with a zero-input pass that replicates the
    // interpreted StaB sequence exactly (routes are data-independent).
    let mut segments: Vec<CompiledSegment> = Vec::with_capacity(session.segments.len());
    for exec in &session.segments {
        let seg = &exec.segment;
        let steps = exec.session.steps();
        let route_cache = exec.session.route_cache();
        let mut layers: Vec<CompiledLayer> = Vec::with_capacity(steps.len());
        let mut names: Vec<String> = Vec::with_capacity(steps.len());

        let mut stab: PingPong<i32> = PingPong::new(iact_spec(&steps[0].0, &steps[0].1));
        for (i, (layer, mapping)) in steps.iter().enumerate() {
            let node = graph.node(seg.nodes[i]);
            names.push(node.name.clone());
            let weight = match &node.op {
                NodeOp::PoolAsConv(_) => WeightSource::Pool(pool_window_weights(layer)),
                _ => WeightSource::Node(node.id),
            };
            let zero_weights = match &weight {
                WeightSource::Pool(w) => w.clone(),
                WeightSource::Node(_) => {
                    Tensor4::zeros(node.weight_shape().expect("conv-like nodes carry weights"))
                }
            };
            let exec = LayerExec::new(&config, layer, mapping)?;
            let ispec = iact_spec(layer, mapping);
            let ospec = oact_spec(layer, mapping);
            let idims = layer.iact_dim_sizes();
            let odims = layer.oact_dim_sizes();

            stab.shadow().reshape(ospec);
            if i > 0 {
                stab.active().rebank(ispec);
            }
            let mut recorder = RouteRecorder::new();
            {
                let (active, shadow) = stab.split_mut();
                let mut iact_view = LayoutView::new(active, &mapping.iact_layout, &idims);
                let mut oact_view = LayoutView::new(shadow, &mapping.oact_layout, &odims);
                run_conv_core(
                    &exec,
                    &zero_weights,
                    &mut iact_view,
                    &mut oact_view,
                    RouteExecution::Collect(route_cache, &mut recorder),
                    i == 0,
                    Some(1),
                )?;
            }
            stab.swap();

            layers.push(CompiledLayer {
                exec,
                weight,
                iact_spec: ispec,
                oact_spec: ospec,
                idims,
                odims,
                iact_plan: crate::core::iact_plan(&mapping.iact_layout, layer),
                oact_plan: crate::core::oact_plan(&mapping.oact_layout, layer),
                routes: recorder.into_stream(),
            });
        }

        segments.push(CompiledSegment {
            names,
            input: slot_of[&seg.input],
            output: slot_of[&seg.output],
            graph_input: seg.input == graph.input(),
            graph_output: seg.output == graph.output(),
            layers,
        });
    }

    // Emit the op stream by symbolically replaying the interpreted run-state
    // transitions (consumer counts, the fresh register, scratch parking).
    let mut remaining: BTreeMap<TensorId, usize> = BTreeMap::new();
    remaining.insert(graph.input(), graph.consumers(graph.input()).len());
    for node in graph.nodes() {
        remaining.insert(node.output, graph.consumers(node.output).len());
    }
    let mut fresh_t: Option<TensorId> = Some(graph.input());
    let mut ops: Vec<Op> = Vec::new();
    let mut joins: Vec<JoinSpec> = Vec::new();

    let take_sym = |t: TensorId,
                    remaining: &mut BTreeMap<TensorId, usize>,
                    fresh_t: &mut Option<TensorId>,
                    ops: &mut Vec<Op>|
     -> OperandSrc {
        let uses = remaining.get_mut(&t).expect("planned tensors are known");
        *uses = uses.saturating_sub(1);
        let last = *uses == 0;
        if *fresh_t == Some(t) {
            if last {
                *fresh_t = None;
            }
            OperandSrc::Fresh { take: last }
        } else {
            ops.push(Op::Unpark {
                tensor: slot_of[&t],
                free: last,
            });
            OperandSrc::Queue
        }
    };
    let publish_sym = |t: TensorId,
                       remaining: &BTreeMap<TensorId, usize>,
                       fresh_t: &mut Option<TensorId>,
                       ops: &mut Vec<Op>,
                       slot_of: &BTreeMap<TensorId, usize>| {
        if let Some(old) = fresh_t.take() {
            if remaining.get(&old).copied().unwrap_or(0) > 0 {
                ops.push(Op::Park {
                    tensor: slot_of[&old],
                });
            }
        }
        *fresh_t = Some(t);
    };

    for step in &session.plan {
        match *step {
            Step::Segment(si) => {
                let seg = &session.segments[si].segment;
                let src = take_sym(seg.input, &mut remaining, &mut fresh_t, &mut ops);
                let (from_fresh, take) = match src {
                    OperandSrc::Fresh { take } => (true, take),
                    OperandSrc::Queue => (false, false),
                };
                ops.push(Op::Stage {
                    seg: si,
                    fresh: from_fresh,
                    take,
                });
                let num_layers = segments[si].layers.len();
                for li in 0..num_layers {
                    ops.push(Op::Fire { seg: si, layer: li });
                    if li + 1 < num_layers {
                        ops.push(Op::Reorder { seg: si, layer: li });
                    }
                    ops.push(Op::Swap { seg: si });
                }
                ops.push(Op::Drain { seg: si });
                publish_sym(seg.output, &remaining, &mut fresh_t, &mut ops, &slot_of);
            }
            Step::Join(id) => {
                let node = graph.node(id);
                let a = take_sym(node.inputs[0], &mut remaining, &mut fresh_t, &mut ops);
                let b = take_sym(node.inputs[1], &mut remaining, &mut fresh_t, &mut ops);
                let ji = joins.len();
                joins.push(JoinSpec {
                    name: node.name.clone(),
                    output: slot_of[&node.output],
                    a,
                    b,
                    graph_output: node.output == graph.output(),
                });
                ops.push(Op::Join { join: ji });
                publish_sym(node.output, &remaining, &mut fresh_t, &mut ops, &slot_of);
            }
        }
    }

    Ok(Program {
        name: graph.name.clone(),
        config,
        batch,
        quant_shift,
        quant_zero,
        threads: session.segments[0].session.threads(),
        input_shape,
        input_slot,
        fingerprint: session_fingerprint(session),
        energy_model: session.energy_model,
        tensors,
        segments,
        joins,
        ops,
    })
}

/// Compile through the on-disk artifact cache — the implementation behind
/// [`GraphSession::compile_cached`].
pub(crate) fn compile_cached(
    session: &GraphSession,
) -> Result<(Program, ArtifactStatus), ArchError> {
    let Some(dir) = cache_dir() else {
        return Ok((compile(session)?, ArtifactStatus::Disabled));
    };
    compile_cached_in(session, &dir)
}

/// [`compile_cached`] against an explicit cache root (testable without
/// touching `FEATHER_CACHE_DIR`). A corrupt or stale artifact is renamed
/// aside to `<name>.bad` before the recompile overwrites its path — it is
/// detected exactly once, never re-parsed on later misses.
pub(crate) fn compile_cached_in(
    session: &GraphSession,
    dir: &Path,
) -> Result<(Program, ArtifactStatus), ArchError> {
    let fingerprint = session_fingerprint(session);
    let path = artifact_path(dir, &session.graph().name, session.batch(), fingerprint);
    let status = match Program::load_checked(&path) {
        LoadOutcome::Loaded(program) if program.fingerprint == fingerprint => {
            return Ok((*program, ArtifactStatus::Hit));
        }
        // The path encodes the fingerprint, so parseable-but-mismatched
        // content is just as wrong as a bad checksum.
        LoadOutcome::Loaded(_) | LoadOutcome::Corrupt => {
            quarantine(&path);
            ArtifactStatus::Quarantined
        }
        LoadOutcome::Missing => ArtifactStatus::Miss,
    };
    let program = compile(session)?;
    // Persistence is best-effort: an unwritable cache degrades to recompiles.
    let _ = program.save_to(&path);
    Ok((program, status))
}

/// Renames an unusable artifact to `<name>.bad` (best-effort) so it is kept
/// for inspection but never consulted — or re-parsed — again.
fn quarantine(path: &Path) {
    let mut bad = path.as_os_str().to_os_string();
    bad.push(".bad");
    let _ = std::fs::rename(path, &bad);
}

/// The artifact cache root: `FEATHER_CACHE_DIR` (shared with layoutloop's
/// co-search cache), or `None` when unset.
fn cache_dir() -> Option<PathBuf> {
    std::env::var_os("FEATHER_CACHE_DIR").map(PathBuf::from)
}

/// The artifact file for a `(model, batch, fingerprint)` triple, inside the
/// `programs/` subdirectory of the cache root.
fn artifact_path(dir: &Path, name: &str, batch: usize, fingerprint: u64) -> PathBuf {
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join("programs")
        .join(format!("{safe}-b{batch}-{fingerprint:016x}.program"))
}

/// FNV-1a 64 fingerprint of everything that determines a session's compiled
/// program — the implementation behind [`GraphSession::fingerprint`].
pub(crate) fn session_fingerprint(session: &GraphSession) -> u64 {
    let graph = session.graph();
    let config = session.config();
    let (shift, zero) = session.quantization();
    let mut text = String::new();
    let threads = match session.segments[0].session.threads() {
        Some(n) => n.to_string(),
        None => "auto".to_string(),
    };
    let _ = writeln!(
        text,
        "program|{}|rows={}|cols={}|stab={}|strb={}|batch={}|shift={shift}|zero={zero}|threads={threads}",
        graph.name,
        config.rows,
        config.cols,
        config.stab_lines,
        config.strb_lines,
        session.batch()
    );
    for node in graph.nodes() {
        let tag = match &node.op {
            NodeOp::Conv(_) => "conv",
            NodeOp::Gemm(_) => "gemm",
            NodeOp::PoolAsConv(_) => "pool",
            NodeOp::Add => "add",
        };
        let inputs: Vec<String> = node.inputs.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            text,
            "node|{}|{}|{tag}|in={}|out={}",
            node.id,
            node.name,
            inputs.join(","),
            node.output
        );
    }
    for (si, exec) in session.segments.iter().enumerate() {
        for (li, (layer, mapping)) in exec.session.steps().iter().enumerate() {
            let _ = writeln!(
                text,
                "layer|{si}|{li}|{},{},{},{},{},{},{},{},{},{}|{},{},{}|{}|{}",
                layer.n,
                layer.m,
                layer.c,
                layer.h,
                layer.w,
                layer.r,
                layer.s,
                layer.stride,
                layer.padding,
                kind_token(layer.kind),
                mapping.m_rows,
                mapping.c_cols,
                mapping.q_cols,
                mapping.iact_layout,
                mapping.oact_layout
            );
        }
    }
    for step in &session.plan {
        let _ = match *step {
            Step::Segment(si) => writeln!(text, "step|seg{si}"),
            Step::Join(id) => writeln!(text, "step|join{id}"),
        };
    }
    fnv1a64(text.as_bytes())
}

/// FNV-1a 64-bit hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// -------------------------------------------------------------------- load

/// Parses a serialized program; `None` on any malformed content, including
/// a missing or mismatched trailing checksum line.
fn parse_program(text: &str) -> Option<Program> {
    // The artifact ends with `checksum <fnv1a64-hex>` covering every byte
    // before it; verify that first so truncation or bit flips anywhere in
    // the body fail fast instead of surfacing as a puzzling parse error.
    let sum_at = text.rfind("checksum ")?;
    if sum_at != 0 && text.as_bytes()[sum_at - 1] != b'\n' {
        return None;
    }
    let expected =
        u64::from_str_radix(text[sum_at..].trim_end().strip_prefix("checksum ")?, 16).ok()?;
    let covered = &text[..sum_at];
    if fnv1a64(covered.as_bytes()) != expected {
        return None;
    }

    let mut lines = covered.lines();
    if lines.next()? != HEADER {
        return None;
    }

    struct LayerParts {
        name: String,
        layer: ConvLayer,
        mapping: LayerMapping,
        pool: bool,
        weight_node: usize,
        requests: Vec<ReductionRequest>,
        stream: Vec<u32>,
        block_starts: Vec<u32>,
    }
    struct SegmentParts {
        input: usize,
        output: usize,
        graph_input: bool,
        graph_output: bool,
        layers: Vec<LayerParts>,
    }

    let mut name = String::new();
    let mut config: Option<FeatherConfig> = None;
    let mut batch = 0usize;
    let mut quant_shift = 0u32;
    let mut quant_zero = 0i8;
    let mut threads: Option<usize> = None;
    let mut fingerprint = 0u64;
    let mut input_slot = 0usize;
    let mut tensors: Vec<TensorSlot> = Vec::new();
    let mut segments: Vec<SegmentParts> = Vec::new();
    let mut joins: Vec<JoinSpec> = Vec::new();
    let mut ops: Vec<Op> = Vec::new();

    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next()?;
        let kv: Vec<(&str, &str)> = parts
            .clone()
            .filter_map(|tok| tok.split_once('='))
            .collect();
        let get =
            |key: &str| -> Option<&str> { kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v) };
        match tag {
            "meta" => {
                name = unesc(get("name")?);
                config = Some(FeatherConfig {
                    rows: get("rows")?.parse().ok()?,
                    cols: get("cols")?.parse().ok()?,
                    stab_lines: get("stab")?.parse().ok()?,
                    strb_lines: get("strb")?.parse().ok()?,
                });
                batch = get("batch")?.parse().ok()?;
                quant_shift = get("shift")?.parse().ok()?;
                quant_zero = get("zero")?.parse().ok()?;
                threads = match get("threads")? {
                    "auto" => None,
                    n => Some(n.parse().ok()?),
                };
                fingerprint = u64::from_str_radix(get("fp")?, 16).ok()?;
                input_slot = get("input")?.parse().ok()?;
            }
            "tensor" => {
                let id: usize = get("id")?.parse().ok()?;
                let shape = parse_usizes::<4>(get("shape")?)?;
                tensors.push(TensorSlot {
                    id,
                    key: format!("t{id}"),
                    shape,
                });
            }
            "segment" => {
                segments.push(SegmentParts {
                    input: get("in")?.parse().ok()?,
                    output: get("out")?.parse().ok()?,
                    graph_input: get("gin")? == "1",
                    graph_output: get("gout")? == "1",
                    layers: Vec::new(),
                });
            }
            "layer" => {
                let si: usize = get("seg")?.parse().ok()?;
                let conv = get("conv")?;
                let mut fields = conv.split(',');
                let n: usize = fields.next()?.parse().ok()?;
                let m: usize = fields.next()?.parse().ok()?;
                let c: usize = fields.next()?.parse().ok()?;
                let h: usize = fields.next()?.parse().ok()?;
                let w: usize = fields.next()?.parse().ok()?;
                let r: usize = fields.next()?.parse().ok()?;
                let s: usize = fields.next()?.parse().ok()?;
                let stride: usize = fields.next()?.parse().ok()?;
                let padding: usize = fields.next()?.parse().ok()?;
                let kind = parse_kind(fields.next()?)?;
                let layer_name = unesc(get("name")?);
                let mut layer = ConvLayer::new(n, m, c, h, w, r, s)
                    .with_stride(stride)
                    .with_padding(padding)
                    .with_name(layer_name.clone());
                layer.kind = kind;
                let map = parse_usizes::<3>(get("map")?)?;
                let mapping = LayerMapping {
                    m_rows: map[0],
                    c_cols: map[1],
                    q_cols: map[2],
                    iact_layout: unesc(get("iact")?).parse().ok()?,
                    oact_layout: unesc(get("oact")?).parse().ok()?,
                };
                let (pool, weight_node) = match get("wsrc")? {
                    "pool" => (true, 0),
                    w => (false, w.strip_prefix('n')?.parse().ok()?),
                };
                segments.get_mut(si)?.layers.push(LayerParts {
                    name: layer_name,
                    layer,
                    mapping,
                    pool,
                    weight_node,
                    requests: Vec::new(),
                    stream: Vec::new(),
                    block_starts: Vec::new(),
                });
            }
            "slot" => {
                let si: usize = get("seg")?.parse().ok()?;
                let li: usize = get("layer")?.parse().ok()?;
                let input_groups: Vec<Option<usize>> = get("groups")?
                    .split(',')
                    .map(|tok| {
                        if tok == "-" {
                            Some(None)
                        } else {
                            tok.parse().ok().map(Some)
                        }
                    })
                    .collect::<Option<Vec<_>>>()?;
                let mut group_destinations = BTreeMap::new();
                let dests = get("dests")?;
                if !dests.is_empty() {
                    for pair in dests.split(',') {
                        let (gid, bank) = pair.split_once(':')?;
                        group_destinations.insert(gid.parse().ok()?, bank.parse().ok()?);
                    }
                }
                segments
                    .get_mut(si)?
                    .layers
                    .get_mut(li)?
                    .requests
                    .push(ReductionRequest {
                        input_groups,
                        group_destinations,
                    });
            }
            "stream" => {
                let si: usize = get("seg")?.parse().ok()?;
                let li: usize = get("layer")?.parse().ok()?;
                let values = rle_decode(line)?;
                segments.get_mut(si)?.layers.get_mut(li)?.stream = values;
            }
            "blocks" => {
                let si: usize = get("seg")?.parse().ok()?;
                let li: usize = get("layer")?.parse().ok()?;
                let deltas = rle_decode(line)?;
                let mut acc = 0u32;
                let starts = deltas
                    .iter()
                    .map(|&d| {
                        acc = acc.checked_add(d)?;
                        Some(acc)
                    })
                    .collect::<Option<Vec<u32>>>()?;
                segments.get_mut(si)?.layers.get_mut(li)?.block_starts = starts;
            }
            "join" => {
                joins.push(JoinSpec {
                    name: unesc(get("name")?),
                    output: get("out")?.parse().ok()?,
                    a: parse_operand(get("a")?)?,
                    b: parse_operand(get("b")?)?,
                    graph_output: get("gout")? == "1",
                });
            }
            "op" => {
                let kind = parts.next()?;
                let op = match kind {
                    "stage" => Op::Stage {
                        seg: get("seg")?.parse().ok()?,
                        fresh: get("fresh")? == "1",
                        take: get("take")? == "1",
                    },
                    "fire" => Op::Fire {
                        seg: get("seg")?.parse().ok()?,
                        layer: get("layer")?.parse().ok()?,
                    },
                    "reorder" => Op::Reorder {
                        seg: get("seg")?.parse().ok()?,
                        layer: get("layer")?.parse().ok()?,
                    },
                    "swap" => Op::Swap {
                        seg: get("seg")?.parse().ok()?,
                    },
                    "drain" => Op::Drain {
                        seg: get("seg")?.parse().ok()?,
                    },
                    "join" => Op::Join {
                        join: get("join")?.parse().ok()?,
                    },
                    "park" => Op::Park {
                        tensor: get("t")?.parse().ok()?,
                    },
                    "unpark" => Op::Unpark {
                        tensor: get("t")?.parse().ok()?,
                        free: get("free")? == "1",
                    },
                    _ => return None,
                };
                ops.push(op);
            }
            _ => return None,
        }
    }

    let config = config?;
    let energy_model = EnergyModel::tsmc28();
    let mut compiled_segments: Vec<CompiledSegment> = Vec::with_capacity(segments.len());
    for seg in segments {
        let mut layers: Vec<CompiledLayer> = Vec::with_capacity(seg.layers.len());
        let mut names: Vec<String> = Vec::with_capacity(seg.layers.len());
        for lp in seg.layers {
            let exec = LayerExec::new(&config, &lp.layer, &lp.mapping).ok()?;
            let routes =
                RouteStream::recompile(exec.birrd(), lp.requests, lp.stream, lp.block_starts)
                    .ok()?;
            // The block table must cover every (wt_m, wt_c, n) work block or
            // replay would index out of range.
            if routes.block_starts.len() != exec.block_count() {
                return None;
            }
            let weight = if lp.pool {
                WeightSource::Pool(pool_window_weights(&lp.layer))
            } else {
                WeightSource::Node(NodeId(lp.weight_node))
            };
            names.push(lp.name);
            layers.push(CompiledLayer {
                iact_spec: iact_spec(&lp.layer, &lp.mapping),
                oact_spec: oact_spec(&lp.layer, &lp.mapping),
                idims: lp.layer.iact_dim_sizes(),
                odims: lp.layer.oact_dim_sizes(),
                iact_plan: crate::core::iact_plan(&lp.mapping.iact_layout, &lp.layer),
                oact_plan: crate::core::oact_plan(&lp.mapping.oact_layout, &lp.layer),
                exec,
                weight,
                routes,
            });
        }
        if layers.is_empty() {
            return None;
        }
        compiled_segments.push(CompiledSegment {
            names,
            input: seg.input,
            output: seg.output,
            graph_input: seg.graph_input,
            graph_output: seg.graph_output,
            layers,
        });
    }
    if tensors.get(input_slot).is_none() || compiled_segments.is_empty() {
        return None;
    }
    let input_shape = tensors[input_slot].shape;
    Some(Program {
        name,
        config,
        batch,
        quant_shift,
        quant_zero,
        threads,
        input_shape,
        input_slot,
        fingerprint,
        energy_model,
        tensors,
        segments: compiled_segments,
        joins,
        ops,
    })
}

// ------------------------------------------------------------ text helpers

fn kind_token(kind: ConvKind) -> &'static str {
    match kind {
        ConvKind::Standard => "standard",
        ConvKind::Depthwise => "depthwise",
        ConvKind::Pointwise => "pointwise",
    }
}

fn parse_kind(token: &str) -> Option<ConvKind> {
    match token {
        "standard" => Some(ConvKind::Standard),
        "depthwise" => Some(ConvKind::Depthwise),
        "pointwise" => Some(ConvKind::Pointwise),
        _ => None,
    }
}

fn operand_token(src: OperandSrc) -> &'static str {
    match src {
        OperandSrc::Fresh { take: true } => "fresh_move",
        OperandSrc::Fresh { take: false } => "fresh_copy",
        OperandSrc::Queue => "queue",
    }
}

fn parse_operand(token: &str) -> Option<OperandSrc> {
    match token {
        "fresh_move" => Some(OperandSrc::Fresh { take: true }),
        "fresh_copy" => Some(OperandSrc::Fresh { take: false }),
        "queue" => Some(OperandSrc::Queue),
        _ => None,
    }
}

fn join_usizes(values: &[usize]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_usizes<const N: usize>(text: &str) -> Option<[usize; N]> {
    let parsed: Vec<usize> = text
        .split(',')
        .map(|tok| tok.parse().ok())
        .collect::<Option<Vec<_>>>()?;
    parsed.try_into().ok()
}

/// First differences of a non-decreasing sequence (starting from zero), the
/// form block-start tables compress best in.
fn deltas_of(values: &[u32]) -> Vec<u32> {
    let mut prev = 0u32;
    values
        .iter()
        .map(|&v| {
            let d = v - prev;
            prev = v;
            d
        })
        .collect()
}

/// Run-length encodes `values` as space-separated `v` / `vxN` tokens.
fn rle_encode(values: &[u32]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        if run > 1 {
            let _ = write!(out, "{v}x{run}");
        } else {
            let _ = write!(out, "{v}");
        }
        i += run;
    }
    out
}

/// Decodes the `v` / `vxN` tokens of a `stream`/`blocks` line (skipping the
/// leading tag and `key=value` pairs).
fn rle_decode(line: &str) -> Option<Vec<u32>> {
    let mut values = Vec::new();
    for tok in line.split_whitespace().skip(1) {
        if tok.contains('=') {
            continue;
        }
        match tok.split_once('x') {
            Some((v, n)) => {
                let v: u32 = v.parse().ok()?;
                let n: usize = n.parse().ok()?;
                values.extend(std::iter::repeat(v).take(n));
            }
            None => values.push(tok.parse().ok()?),
        }
    }
    Some(values)
}

/// Escapes a string for single-token storage (space, `=`, `%`, newlines).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3D"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`] (unknown escapes pass through verbatim).
fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.clone().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "20" => out.push(' '),
            "3D" => out.push('='),
            "09" => out.push('\t'),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            _ => {
                out.push(c);
                continue;
            }
        }
        chars.next();
        chars.next();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use feather_arch::graph::Graph;

    fn residual_graph() -> Graph {
        let mut g = Graph::new("residual", [1, 4, 6, 6]);
        let stem = g
            .conv(
                g.input(),
                ConvLayer::new(1, 4, 4, 6, 6, 3, 3)
                    .with_padding(1)
                    .with_name("stem"),
            )
            .unwrap();
        let main = g
            .conv(
                stem,
                ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("b0_main"),
            )
            .unwrap();
        let proj = g
            .conv(
                stem,
                ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("b0_proj"),
            )
            .unwrap();
        let j0 = g.add(main, proj, "b0_add").unwrap();
        let main1 = g
            .conv(
                j0,
                ConvLayer::new(1, 8, 8, 6, 6, 3, 3)
                    .with_padding(1)
                    .with_name("b1_main"),
            )
            .unwrap();
        let j1 = g.add(main1, j0, "b1_add").unwrap();
        g.conv(j1, ConvLayer::new(1, 4, 8, 6, 6, 1, 1).with_name("head"))
            .unwrap();
        g
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "feather-program-test-{tag}-{}.program",
            std::process::id()
        ))
    }

    #[test]
    fn replay_matches_interpreted_run_exactly() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let iacts = Tensor4::random([1, 4, 6, 6], 11);
        let weights = g.random_weights(12);
        let interpreted = session.run(&iacts, &weights).unwrap();
        let program = session.compile().unwrap();
        let replayed = ProgramSession::new(program).run(&iacts, &weights).unwrap();
        assert_eq!(replayed.oacts, interpreted.oacts);
        assert_eq!(replayed.report, interpreted.report);
    }

    #[test]
    fn replay_is_reusable_and_thread_invariant() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let iacts = Tensor4::random([1, 4, 6, 6], 21);
        let weights = g.random_weights(22);
        let interpreted = session.run(&iacts, &weights).unwrap();
        let replay = ProgramSession::new(session.compile().unwrap());
        // Replay twice (a serving process reuses one program) and once with
        // explicit sharding — all bit-identical.
        let first = replay.run(&iacts, &weights).unwrap();
        let second = replay.run(&iacts, &weights).unwrap();
        let sharded = replay
            .clone()
            .with_threads(3)
            .run(&iacts, &weights)
            .unwrap();
        assert_eq!(first.report, interpreted.report);
        assert_eq!(second.report, interpreted.report);
        assert_eq!(sharded.oacts, interpreted.oacts);
        assert_eq!(sharded.report, interpreted.report);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_retargets_across_programs() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let weights = g.random_weights(42);
        let replay = ProgramSession::new(session.compile().unwrap());
        let batched = ProgramSession::new(session.with_batch(2).unwrap().compile().unwrap());

        let mut scratch = ReplayScratch::new();
        for seed in 0..3u64 {
            // Different inputs through one reused scratch: each run must
            // match a fresh-scratch run exactly (outputs and full report),
            // i.e. no state may leak between requests.
            let iacts = Tensor4::random([1, 4, 6, 6], 50 + seed);
            let fresh = replay.run(&iacts, &weights).unwrap();
            let reused = replay
                .run_with_scratch(&mut scratch, &iacts, &weights)
                .unwrap();
            assert_eq!(reused.oacts, fresh.oacts, "seed {seed} outputs diverged");
            assert_eq!(reused.report, fresh.report, "seed {seed} report diverged");
        }

        // Handing the same scratch a different program (the batch-2 variant)
        // retargets the stash instead of corrupting the run.
        let iacts2 = Tensor4::random([2, 4, 6, 6], 60);
        let fresh2 = batched.run(&iacts2, &weights).unwrap();
        let reused2 = batched
            .run_with_scratch(&mut scratch, &iacts2, &weights)
            .unwrap();
        assert_eq!(reused2.oacts, fresh2.oacts);
        assert_eq!(reused2.report, fresh2.report);

        // And back again, still exact.
        let iacts3 = Tensor4::random([1, 4, 6, 6], 70);
        let fresh3 = replay.run(&iacts3, &weights).unwrap();
        let reused3 = replay
            .run_with_scratch(&mut scratch, &iacts3, &weights)
            .unwrap();
        assert_eq!(reused3.oacts, fresh3.oacts);
        assert_eq!(reused3.report, fresh3.report);
    }

    #[test]
    fn batched_replay_is_bit_identical_to_solo_replays() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let weights = g.random_weights(82);
        let replay = ProgramSession::new(session.compile().unwrap());
        let samples: Vec<Tensor4<i8>> = (0..4u64)
            .map(|seed| Tensor4::random([1, 4, 6, 6], 80 + seed))
            .collect();

        let mut scratch = BatchedScratch::new();
        for lanes in [1usize, 2, 4] {
            let batch = &samples[..lanes];
            let fresh = replay.run_batched(batch, &weights).unwrap();
            let reused = replay
                .run_batched_with_scratch(&mut scratch, batch, &weights)
                .unwrap();
            assert_eq!(fresh.len(), lanes);
            for (lane, sample) in batch.iter().enumerate() {
                let solo = replay.run(sample, &weights).unwrap();
                assert_eq!(fresh[lane].oacts, solo.oacts, "lane {lane} outputs");
                assert_eq!(fresh[lane].report, solo.report, "lane {lane} report");
                assert_eq!(reused[lane].oacts, solo.oacts, "lane {lane} reused outputs");
                assert_eq!(
                    reused[lane].report, solo.report,
                    "lane {lane} reused report"
                );
            }
        }
        // Sharded batched replay stays exact too.
        let sharded = replay
            .clone()
            .with_threads(3)
            .run_batched(&samples, &weights)
            .unwrap();
        for (lane, sample) in samples.iter().enumerate() {
            let solo = replay.run(sample, &weights).unwrap();
            assert_eq!(sharded[lane].oacts, solo.oacts, "lane {lane} sharded");
            assert_eq!(sharded[lane].report, solo.report, "lane {lane} sharded");
        }
        assert!(replay.run_batched(&[], &weights).is_err());
    }

    #[test]
    fn artifact_roundtrip_preserves_program_and_results() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let program = session.compile().unwrap();
        let path = temp_path("roundtrip");
        program.save_to(&path).unwrap();
        let loaded = Program::load_from(&path).expect("artifact loads");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.fingerprint(), program.fingerprint());
        assert_eq!(loaded.dump(), program.dump());
        let iacts = Tensor4::random([1, 4, 6, 6], 31);
        let weights = g.random_weights(32);
        let interpreted = session.run(&iacts, &weights).unwrap();
        let replayed = ProgramSession::new(loaded).run(&iacts, &weights).unwrap();
        assert_eq!(replayed.oacts, interpreted.oacts);
        assert_eq!(replayed.report, interpreted.report);
    }

    #[test]
    fn malformed_artifacts_degrade_to_none() {
        let path = temp_path("malformed");
        std::fs::write(&path, "not a program\n").unwrap();
        assert!(Program::load_from(&path).is_none());
        std::fs::write(&path, format!("{HEADER}\nmeta nope\n")).unwrap();
        assert!(Program::load_from(&path).is_none());
        let _ = std::fs::remove_file(&path);
        assert!(Program::load_from(Path::new("/nonexistent/p.program")).is_none());
    }

    #[test]
    fn checksum_rejects_truncation_and_bit_flips() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let program = session.compile().unwrap();
        let text = program.serialize();
        assert!(parse_program(&text).is_some(), "pristine artifact loads");

        // Truncation: drop the tail (checksum line gone or body shortened).
        for keep in [text.len() / 2, text.len() - 20] {
            assert!(
                parse_program(&text[..keep]).is_none(),
                "truncated at {keep} must be rejected"
            );
        }
        // A single flipped bit in the middle of the body.
        let mut bytes = text.clone().into_bytes();
        bytes[text.len() / 2] ^= 0x40;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(
            parse_program(&flipped).is_none(),
            "bit flip must be rejected"
        );
    }

    #[test]
    fn corrupt_artifacts_are_quarantined_once_then_cache_hits() {
        let g = residual_graph();
        let session = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "feather-program-test-quarantine-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Populate the cache, then corrupt the artifact in place.
        let (program, status) = compile_cached_in(&session, &dir).unwrap();
        assert_eq!(status, ArtifactStatus::Miss);
        let path = artifact_path(&dir, &g.name, session.batch(), session.fingerprint());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // The corruption is detected, the file moved aside, and the
        // recompile produces the same program.
        let (recompiled, status) = compile_cached_in(&session, &dir).unwrap();
        assert_eq!(status, ArtifactStatus::Quarantined);
        assert_eq!(recompiled.dump(), program.dump());
        let bad = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".bad");
            PathBuf::from(os)
        };
        assert_eq!(std::fs::read(&bad).unwrap(), bytes, "evidence preserved");

        // Quarantined once: the path now holds a good artifact again, so
        // the next miss is a plain Hit, not another parse of bad bytes.
        let (_, status) = compile_cached_in(&session, &dir).unwrap();
        assert_eq!(status, ArtifactStatus::Hit);

        // Truncation is caught the same way.
        let good = std::fs::read(&path).unwrap();
        std::fs::write(&path, &good[..good.len() / 3]).unwrap();
        let (_, status) = compile_cached_in(&session, &dir).unwrap();
        assert_eq!(status, ArtifactStatus::Quarantined);
        let (_, status) = compile_cached_in(&session, &dir).unwrap();
        assert_eq!(status, ArtifactStatus::Hit);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_schedule_changes() {
        let g = residual_graph();
        let base = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        assert_eq!(base.fingerprint(), base.fingerprint());
        let batched = base.with_batch(4).unwrap();
        assert_ne!(base.fingerprint(), batched.fingerprint());
        let requantized = base.clone().with_quantization(5, 1);
        assert_ne!(base.fingerprint(), requantized.fingerprint());
        let other_fabric = GraphSession::auto(FeatherConfig::new(4, 4), &g).unwrap();
        assert_ne!(base.fingerprint(), other_fabric.fingerprint());
    }

    #[test]
    fn rle_roundtrip() {
        for values in [
            vec![],
            vec![7],
            vec![0, 0, 0, 1, 2, 2, 2, 2],
            vec![5, 5, 5, 5, 5],
            (0..40u32).collect(),
        ] {
            let line = format!("stream seg=0 layer=0 {}", rle_encode(&values));
            assert_eq!(rle_decode(&line).unwrap(), values, "{line}");
        }
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "with space", "a=b", "100%", "t\nx", ""] {
            assert_eq!(unesc(&esc(s)), s, "{s:?}");
            assert!(!esc(s).contains(' '), "{s:?} escaped must be one token");
        }
    }
}
