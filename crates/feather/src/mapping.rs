//! Per-layer mapping: which (dataflow, layout) pair FEATHER runs a layer with.

use feather_arch::dataflow::{ArrayShape, Dataflow, LoopNest, ParallelDim};
use feather_arch::dims::Dim;
use feather_arch::layout::Layout;
use feather_arch::workload::ConvLayer;
use feather_arch::ArchError;
use serde::{Deserialize, Serialize};

use crate::config::FeatherConfig;

/// The mapping of one layer onto FEATHER: output channels across PE rows,
/// input channels (and optionally output pixels) across PE columns, with the
/// iAct layout the data currently sits in and the oAct layout RIR must produce
/// for the next layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Output channels mapped across PE rows.
    pub m_rows: usize,
    /// Input channels mapped across adjacent PE columns (the BIRRD reduction
    /// group size).
    pub c_cols: usize,
    /// Output-width positions mapped across column groups.
    pub q_cols: usize,
    /// Layout of the input activations in the StaB half being read.
    pub iact_layout: Layout,
    /// Layout the output activations are written back in (next layer's iActs).
    pub oact_layout: Layout,
}

impl LayerMapping {
    /// Builds the weight-stationary mapping used throughout the paper's
    /// walk-throughs (Fig. 9 / Fig. 11): `M` across rows, `C` across adjacent
    /// columns, remaining columns used for `Q` parallelism.
    ///
    /// # Panics
    /// Panics if the layout strings do not parse (they are compile-time
    /// constants in normal use).
    pub fn weight_stationary(
        layer: &ConvLayer,
        config: &FeatherConfig,
        iact_layout: &str,
        oact_layout: &str,
    ) -> Self {
        Self::weight_stationary_layouts(
            layer,
            config,
            iact_layout
                .parse()
                .expect("iact layout string must be valid"),
            oact_layout
                .parse()
                .expect("oact layout string must be valid"),
        )
    }

    /// [`LayerMapping::weight_stationary`] with already-parsed layouts (the
    /// form the pipeline session uses for its derived boundary layouts).
    pub fn weight_stationary_layouts(
        layer: &ConvLayer,
        config: &FeatherConfig,
        iact_layout: Layout,
        oact_layout: Layout,
    ) -> Self {
        let m_rows = layer.m.min(config.rows).max(1);
        let c_cols = layer.c.min(config.cols).max(1);
        let q_cols = layer.output_width().min(config.cols / c_cols).max(1);
        LayerMapping {
            m_rows,
            c_cols,
            q_cols,
            iact_layout,
            oact_layout,
        }
    }

    /// Projects a co-searched [`Dataflow`] (e.g. from
    /// `layoutloop::cosearch::plan_network`) onto FEATHER's controller
    /// vocabulary: the `M` factor parallelized across rows and the `C`/`Q`
    /// factors parallelized across columns. Dimensions the controller does not
    /// parallelize (`P`, `R`, `S`) stay temporal; factors are clamped to the
    /// array and the layer.
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidDataflow`] if the projected factors do not
    /// form a valid mapping for this layer/hardware.
    pub fn from_dataflow(
        layer: &ConvLayer,
        config: &FeatherConfig,
        dataflow: &Dataflow,
        iact_layout: Layout,
        oact_layout: Layout,
    ) -> Result<Self, ArchError> {
        let factor_of = |dims: &[ParallelDim], d: Dim| {
            dims.iter()
                .filter(|p| p.dim == d)
                .map(|p| p.factor)
                .product::<usize>()
                .max(1)
        };
        let m_rows = factor_of(&dataflow.row_parallel, Dim::M)
            .min(config.rows)
            .min(layer.m)
            .max(1);
        let c_cols = factor_of(&dataflow.col_parallel, Dim::C)
            .min(config.cols)
            .min(layer.c)
            .max(1);
        let q_cols = factor_of(&dataflow.col_parallel, Dim::Q)
            .min(config.cols / c_cols)
            .min(layer.output_width())
            .max(1);
        let mapping = LayerMapping {
            m_rows,
            c_cols,
            q_cols,
            iact_layout,
            oact_layout,
        };
        mapping.validate(layer, config)?;
        Ok(mapping)
    }

    /// Validates the mapping against a layer and hardware configuration.
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidDataflow`] if factors are zero, exceed the
    /// array, or the oAct layout's line is wider than the number of StaB banks.
    pub fn validate(&self, layer: &ConvLayer, config: &FeatherConfig) -> Result<(), ArchError> {
        if self.m_rows == 0 || self.c_cols == 0 || self.q_cols == 0 {
            return Err(ArchError::InvalidDataflow(
                "mapping factors must be non-zero".to_string(),
            ));
        }
        if self.m_rows > config.rows {
            return Err(ArchError::InvalidDataflow(format!(
                "m_rows {} exceeds array rows {}",
                self.m_rows, config.rows
            )));
        }
        if self.c_cols * self.q_cols > config.cols {
            return Err(ArchError::InvalidDataflow(format!(
                "c_cols*q_cols = {} exceeds array columns {}",
                self.c_cols * self.q_cols,
                config.cols
            )));
        }
        if self.c_cols > layer.c || self.m_rows > layer.m {
            return Err(ArchError::InvalidDataflow(
                "spatial factors exceed workload dimensions".to_string(),
            ));
        }
        if self.oact_layout.line_size() > config.cols {
            return Err(ArchError::InvalidDataflow(format!(
                "oAct layout line size {} exceeds the {} StaB banks",
                self.oact_layout.line_size(),
                config.cols
            )));
        }
        Ok(())
    }

    /// Number of column groups (independent outputs) per row fire.
    pub fn groups_per_fire(&self) -> usize {
        self.q_cols
    }

    /// The equivalent [`Dataflow`] description (for reporting and for feeding
    /// the analytic models).
    pub fn as_dataflow(&self, layer: &ConvLayer, config: &FeatherConfig) -> Dataflow {
        let shape = ArrayShape::new(config.rows, config.cols);
        let temporal = LoopNest::new(
            [
                (Dim::N, layer.n),
                (Dim::M, layer.m.div_ceil(self.m_rows)),
                (Dim::C, layer.c.div_ceil(self.c_cols)),
                (Dim::P, layer.output_height()),
                (Dim::Q, layer.output_width().div_ceil(self.q_cols)),
                (Dim::R, layer.r),
                (Dim::S, layer.s),
            ]
            .into_iter()
            .filter(|(_, e)| *e > 1),
        );
        Dataflow::new(
            format!("feather-M{}xC{}xQ{}", self.m_rows, self.c_cols, self.q_cols),
            shape,
            vec![ParallelDim::new(Dim::M, self.m_rows)],
            vec![
                ParallelDim::new(Dim::C, self.c_cols),
                ParallelDim::new(Dim::Q, self.q_cols),
            ],
            temporal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        ConvLayer::new(1, 8, 8, 6, 6, 3, 3).with_padding(1)
    }

    #[test]
    fn weight_stationary_mapping_fits() {
        let cfg = FeatherConfig::new(4, 4);
        let m = LayerMapping::weight_stationary(&layer(), &cfg, "HWC_C4", "MPQ_Q4");
        m.validate(&layer(), &cfg).unwrap();
        assert_eq!(m.m_rows, 4);
        assert_eq!(m.c_cols, 4);
        assert_eq!(m.q_cols, 1);
    }

    #[test]
    fn small_channel_layer_uses_q_parallelism() {
        let l = ConvLayer::new(1, 8, 2, 6, 6, 3, 3).with_padding(1);
        let cfg = FeatherConfig::new(4, 8);
        let m = LayerMapping::weight_stationary(&l, &cfg, "HWC_C2", "MPQ_Q8");
        assert_eq!(m.c_cols, 2);
        assert_eq!(m.q_cols, 4);
        m.validate(&l, &cfg).unwrap();
    }

    #[test]
    fn validation_catches_oversized_factors() {
        let cfg = FeatherConfig::new(4, 4);
        let mut m = LayerMapping::weight_stationary(&layer(), &cfg, "HWC_C4", "MPQ_Q4");
        m.c_cols = 8;
        assert!(m.validate(&layer(), &cfg).is_err());
        let mut m2 = LayerMapping::weight_stationary(&layer(), &cfg, "HWC_C4", "MPQ_Q4");
        m2.oact_layout = "MPQ_Q8".parse().unwrap();
        assert!(m2.validate(&layer(), &cfg).is_err());
    }

    #[test]
    fn from_dataflow_roundtrips_weight_stationary() {
        let cfg = FeatherConfig::new(4, 4);
        let l = layer();
        let ws = LayerMapping::weight_stationary(&l, &cfg, "HWC_C4", "MPQ_Q4");
        let df = ws.as_dataflow(&l, &cfg);
        let projected = LayerMapping::from_dataflow(
            &l,
            &cfg,
            &df,
            "HWC_C4".parse().unwrap(),
            "MPQ_Q4".parse().unwrap(),
        )
        .unwrap();
        assert_eq!(projected, ws);
    }

    #[test]
    fn from_dataflow_clamps_foreign_parallelism() {
        use feather_arch::dataflow::{ArrayShape, LoopNest};
        // A dataflow parallelizing P across columns projects to a plain
        // M-rows mapping with unit column factors.
        let cfg = FeatherConfig::new(4, 4);
        let l = layer();
        let df = Dataflow::new(
            "p-parallel",
            ArrayShape::new(4, 4),
            vec![ParallelDim::new(Dim::M, 4)],
            vec![ParallelDim::new(Dim::P, 4)],
            LoopNest::new([(Dim::C, 8)]),
        );
        let m = LayerMapping::from_dataflow(
            &l,
            &cfg,
            &df,
            "HWC_C4".parse().unwrap(),
            "MPQ_Q4".parse().unwrap(),
        )
        .unwrap();
        assert_eq!(m.m_rows, 4);
        assert_eq!(m.c_cols, 1);
        assert_eq!(m.q_cols, 1);
    }

    #[test]
    fn as_dataflow_is_valid() {
        let cfg = FeatherConfig::new(4, 4);
        let l = layer();
        let m = LayerMapping::weight_stationary(&l, &cfg, "HWC_C4", "MPQ_Q4");
        let df = m.as_dataflow(&l, &cfg);
        df.validate(&l.clone().into()).unwrap();
        assert_eq!(df.spatial_reduction_size(), 4);
    }
}
