//! Concurrency stress for the bounded compiled-route cache: many threads
//! replay layers through one shared `RouteCache` (via a shared
//! `GraphSession`), and the hit/miss/eviction counters must stay exactly
//! consistent — no lost updates, and no compile work beyond what the `misses`
//! counter admits to. The serving executor pool leans on precisely this
//! property: N executor workers share each model's route cache.

use std::collections::BTreeMap;
use std::sync::Arc;

use feather::{FeatherConfig, GraphSession};
use feather_arch::graph::{Graph, NodeId};
use feather_arch::tensor::Tensor4;
use feather_arch::workload::ConvLayer;

const THREADS: usize = 4;
const RUNS_PER_THREAD: usize = 6;

/// conv → (main ‖ proj) → add → conv: several distinct route shapes.
fn residual_graph() -> Graph {
    let mut g = Graph::new("route-stress", [1, 4, 6, 6]);
    let stem = g
        .conv(
            g.input(),
            ConvLayer::new(1, 4, 4, 6, 6, 3, 3)
                .with_padding(1)
                .with_name("stem"),
        )
        .unwrap();
    let main = g
        .conv(stem, ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("main"))
        .unwrap();
    let proj = g
        .conv(stem, ConvLayer::new(1, 8, 4, 6, 6, 1, 1).with_name("proj"))
        .unwrap();
    let join = g.add(main, proj, "add").unwrap();
    g.conv(join, ConvLayer::new(1, 4, 8, 6, 6, 1, 1).with_name("head"))
        .unwrap();
    g
}

fn fixture() -> (Graph, BTreeMap<NodeId, Tensor4<i8>>, Tensor4<i8>) {
    let g = residual_graph();
    let weights = g.random_weights(17);
    let iacts = Tensor4::random([1, 4, 6, 6], 18);
    (g, weights, iacts)
}

#[test]
fn warm_cache_counters_are_exact_under_contention() {
    let (g, weights, iacts) = fixture();
    let session = Arc::new(GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap());
    let golden = session.run(&iacts, &weights).unwrap().oacts;

    // Warm: the first run populates the shared map; a second run measures
    // how many shared-map lookups one run performs once warm (the
    // worker-local L1 lives for a single layer span, so steady-state runs
    // still touch the shared map a deterministic number of times).
    let after_warm = session.route_cache_stats();
    let lookups_per_run = {
        session.run(&iacts, &weights).unwrap();
        let s = session.route_cache_stats();
        assert_eq!(s.misses, after_warm.misses, "warm runs must not compile");
        s.hits - after_warm.hits
    };
    assert!(lookups_per_run > 0, "runs must consult the shared cache");
    let before = session.route_cache_stats();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = session.clone();
            let weights = &weights;
            let iacts = &iacts;
            let golden = &golden;
            scope.spawn(move || {
                for _ in 0..RUNS_PER_THREAD {
                    let run = session.run(iacts, weights).unwrap();
                    assert_eq!(&run.oacts, golden, "contended run diverged");
                }
            });
        }
    });

    // Every shared lookup from every thread must be accounted for exactly:
    // atomically-counted hits, zero compiles, zero evictions, stable
    // occupancy. A lost update or a sneaked-in recompile shows up here.
    let after = session.route_cache_stats();
    assert_eq!(
        after.hits - before.hits,
        (THREADS * RUNS_PER_THREAD) as u64 * lookups_per_run,
        "hit counter lost updates under contention"
    );
    assert_eq!(
        after.misses, before.misses,
        "warm cache must never recompile"
    );
    assert_eq!(after.evictions, before.evictions);
    assert_eq!(after.entries, before.entries);
}

#[test]
fn cold_cache_races_stay_consistent() {
    let (g, weights, iacts) = fixture();
    // A fresh session per test: all threads race the same cold cache.
    let session = Arc::new(GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap());
    let golden = {
        let solo = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        solo.run(&iacts, &weights).unwrap().oacts
    };

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = session.clone();
            let weights = &weights;
            let iacts = &iacts;
            let golden = &golden;
            scope.spawn(move || {
                for _ in 0..RUNS_PER_THREAD {
                    let run = session.run(iacts, weights).unwrap();
                    assert_eq!(&run.oacts, golden, "cold-race run diverged");
                }
            });
        }
    });

    // Distinct routes for this graph, from an uncontended reference run.
    let distinct = {
        let solo = GraphSession::auto(FeatherConfig::new(4, 8), &g).unwrap();
        solo.run(&iacts, &weights).unwrap();
        solo.route_cache_stats().entries
    };

    let stats = session.route_cache_stats();
    // Concurrent first-lookups of the same route may each compile (the
    // publish keeps whichever landed first), but every such compile must be
    // counted as a miss and the map must converge to exactly the distinct
    // route set — nothing lost, nothing duplicated, nothing evicted.
    assert_eq!(stats.entries, distinct, "resident set must converge");
    assert!(
        stats.misses >= distinct as u64,
        "every distinct route compiled at least once"
    );
    assert!(
        stats.misses <= (THREADS * distinct) as u64,
        "double-compiles cannot exceed one per racing thread per route"
    );
    assert_eq!(stats.evictions, 0, "this working set never evicts");
    assert!(stats.hits + stats.misses >= stats.misses);
}
